#include "cinderella/cfg/dot.hpp"

#include <sstream>

namespace cinderella::cfg {

namespace {

void emitBody(std::ostringstream& out, const vm::Module& module,
              const ControlFlowGraph& cfg, const std::string& prefix) {
  const vm::Function& fn = module.function(cfg.functionIndex());
  out << "  " << prefix << "entry [shape=point];\n";
  out << "  " << prefix << "exit [shape=point];\n";
  for (const auto& b : cfg.blocks()) {
    out << "  " << prefix << "B" << b.id << " [shape=box, label=\"x" << b.id;
    if (b.firstLine > 0) {
      out << "\\nlines " << b.firstLine << ".." << b.lastLine;
    }
    out << "\\ninstr " << b.firstInstr << ".." << b.lastInstr << "\"];\n";
  }
  for (const auto& e : cfg.edges()) {
    out << "  "
        << (e.isEntry() ? prefix + "entry"
                        : prefix + "B" + std::to_string(e.from))
        << " -> "
        << (e.isExit() ? prefix + "exit"
                       : prefix + "B" + std::to_string(e.to))
        << " [label=\"d" << e.id << "\"";
    if (e.isCall()) {
      out << ", style=dashed, color=blue, label=\"f via "
          << module.function(e.callee).name << "\"";
    }
    out << "];\n";
  }
  out << "  " << prefix << "label_node [shape=plaintext, label=\"" << fn.name
      << "\"];\n";
}

}  // namespace

std::string toDot(const vm::Module& module, const ControlFlowGraph& cfg) {
  std::ostringstream out;
  out << "digraph cfg {\n";
  emitBody(out, module, cfg, "");
  out << "}\n";
  return out.str();
}

std::string moduleToDot(const vm::Module& module) {
  std::ostringstream out;
  out << "digraph module {\n";
  for (int f = 0; f < module.numFunctions(); ++f) {
    const ControlFlowGraph cfg = buildCfg(module, f);
    const std::string prefix = "f" + std::to_string(f) + "_";
    out << " subgraph cluster_" << f << " {\n";
    out << "  label=\"" << module.function(f).name << "\";\n";
    emitBody(out, module, cfg, prefix);
    out << " }\n";
    // Inter-cluster call edges.
    for (const auto& e : cfg.edges()) {
      if (!e.isCall()) continue;
      out << " " << prefix << "B" << e.from << " -> f" << e.callee
          << "_B0 [style=dotted, color=red];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace cinderella::cfg
