#include "cinderella/cfg/loops.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace cinderella::cfg {

bool NaturalLoop::contains(int block) const {
  return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::vector<NaturalLoop> findLoops(const ControlFlowGraph& cfg,
                                   const DominatorTree& dom) {
  // header -> (latches, member set)
  std::map<int, std::pair<std::vector<int>, std::set<int>>> loopsByHeader;

  for (const auto& e : cfg.edges()) {
    if (e.isEntry() || e.isExit()) continue;
    if (!dom.reachable(e.from)) continue;
    if (!dom.dominates(e.to, e.from)) continue;  // not a back edge
    auto& [latches, members] = loopsByHeader[e.to];
    latches.push_back(e.from);
    // Natural loop: header + all blocks that reach the latch without
    // passing through the header (reverse flood fill from the latch).
    members.insert(e.to);
    std::vector<int> work{e.from};
    while (!work.empty()) {
      const int b = work.back();
      work.pop_back();
      if (!members.insert(b).second) continue;
      for (const int p : cfg.predecessors(b)) {
        if (!members.count(p)) work.push_back(p);
      }
    }
  }

  std::vector<NaturalLoop> loops;
  for (auto& [header, data] : loopsByHeader) {
    NaturalLoop loop;
    loop.header = header;
    loop.latches = std::move(data.first);
    std::sort(loop.latches.begin(), loop.latches.end());
    loop.blocks.assign(data.second.begin(), data.second.end());
    for (const int e : cfg.block(header).predEdges) {
      const Edge& edge = cfg.edge(e);
      if (edge.isEntry() || !loop.contains(edge.from)) {
        loop.entryEdges.push_back(e);
      }
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

}  // namespace cinderella::cfg
