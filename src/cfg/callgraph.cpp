#include "cinderella/cfg/callgraph.hpp"

#include <algorithm>

#include "cinderella/support/error.hpp"

namespace cinderella::cfg {

CallGraph::CallGraph(const vm::Module& module) {
  callees_.resize(static_cast<std::size_t>(module.numFunctions()));
  for (int f = 0; f < module.numFunctions(); ++f) {
    std::vector<int>& out = callees_[static_cast<std::size_t>(f)];
    for (const auto& in : module.function(f).code) {
      if (in.op == vm::Opcode::Call) out.push_back(static_cast<int>(in.imm));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  // Cycle detection over the whole graph.
  enum : char { White, Grey, Black };
  std::vector<char> color(callees_.size(), White);
  auto dfs = [&](auto&& self, int f) -> bool {
    color[static_cast<std::size_t>(f)] = Grey;
    for (const int c : callees_[static_cast<std::size_t>(f)]) {
      if (color[static_cast<std::size_t>(c)] == Grey) return true;
      if (color[static_cast<std::size_t>(c)] == White && self(self, c)) {
        return true;
      }
    }
    color[static_cast<std::size_t>(f)] = Black;
    return false;
  };
  for (std::size_t f = 0; f < callees_.size(); ++f) {
    if (color[f] == White && dfs(dfs, static_cast<int>(f))) {
      hasCycle_ = true;
      break;
    }
  }
}

std::vector<int> CallGraph::bottomUpOrder(int root) const {
  CIN_REQUIRE(!hasCycle_);
  std::vector<int> order;
  std::vector<char> visited(callees_.size(), 0);
  auto dfs = [&](auto&& self, int f) -> void {
    visited[static_cast<std::size_t>(f)] = 1;
    for (const int c : callees_[static_cast<std::size_t>(f)]) {
      if (!visited[static_cast<std::size_t>(c)]) self(self, c);
    }
    order.push_back(f);
  };
  dfs(dfs, root);
  return order;
}

}  // namespace cinderella::cfg
