#include "cinderella/cfg/dominators.hpp"

#include <algorithm>

#include "cinderella/support/error.hpp"

namespace cinderella::cfg {

namespace {

/// Reverse-postorder numbering of blocks reachable from the entry.
std::vector<int> reversePostorder(const ControlFlowGraph& cfg) {
  std::vector<int> order;
  std::vector<char> visited(static_cast<std::size_t>(cfg.numBlocks()), 0);
  // Iterative DFS with an explicit stack carrying a child cursor.
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(0, 0);
  visited[0] = 1;
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(cfg.numBlocks()));
  for (int b = 0; b < cfg.numBlocks(); ++b) {
    succ[static_cast<std::size_t>(b)] = cfg.successors(b);
  }
  while (!stack.empty()) {
    auto& [block, cursor] = stack.back();
    const auto& kids = succ[static_cast<std::size_t>(block)];
    if (cursor < kids.size()) {
      const int child = kids[cursor++];
      if (!visited[static_cast<std::size_t>(child)]) {
        visited[static_cast<std::size_t>(child)] = 1;
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

DominatorTree::DominatorTree(const ControlFlowGraph& cfg) {
  const int n = cfg.numBlocks();
  idom_.assign(static_cast<std::size_t>(n), -1);
  const std::vector<int> rpo = reversePostorder(cfg);
  std::vector<int> rpoIndex(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpoIndex[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpoIndex[static_cast<std::size_t>(a)] >
             rpoIndex[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (rpoIndex[static_cast<std::size_t>(b)] >
             rpoIndex[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  idom_[0] = 0;  // sentinel: entry dominated by itself during iteration
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int b : rpo) {
      if (b == 0) continue;
      int newIdom = -1;
      for (const int p : cfg.predecessors(b)) {
        if (rpoIndex[static_cast<std::size_t>(p)] < 0) continue;  // unreachable
        if (idom_[static_cast<std::size_t>(p)] < 0) continue;     // unprocessed
        newIdom = (newIdom < 0) ? p : intersect(p, newIdom);
      }
      if (newIdom >= 0 && idom_[static_cast<std::size_t>(b)] != newIdom) {
        idom_[static_cast<std::size_t>(b)] = newIdom;
        changed = true;
      }
    }
  }
  idom_[0] = -1;  // restore convention: entry has no idom
}

bool DominatorTree::dominates(int a, int b) const {
  if (!reachable(b)) return false;
  int cur = b;
  while (true) {
    if (cur == a) return true;
    const int next = idom_[static_cast<std::size_t>(cur)];
    if (next < 0 || next == cur) return false;
    cur = next;
  }
}

}  // namespace cinderella::cfg
