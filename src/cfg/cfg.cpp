#include "cinderella/cfg/cfg.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "cinderella/support/error.hpp"
#include "cinderella/support/text.hpp"
#include "cinderella/vm/disasm.hpp"

namespace cinderella::cfg {

int ControlFlowGraph::blockOfInstr(int instrIndex) const {
  CIN_REQUIRE(instrIndex >= 0 &&
              instrIndex < static_cast<int>(instrToBlock_.size()));
  return instrToBlock_[static_cast<std::size_t>(instrIndex)];
}

std::vector<int> ControlFlowGraph::successors(int id) const {
  std::vector<int> out;
  for (const int e : block(id).succEdges) {
    if (!edge(e).isExit()) out.push_back(edge(e).to);
  }
  return out;
}

std::vector<int> ControlFlowGraph::predecessors(int id) const {
  std::vector<int> out;
  for (const int e : block(id).predEdges) {
    if (!edge(e).isEntry()) out.push_back(edge(e).from);
  }
  return out;
}

std::string ControlFlowGraph::str(const vm::Module& module) const {
  const vm::Function& fn = module.function(functionIndex_);
  std::ostringstream out;
  out << "cfg of " << fn.name << ": " << numBlocks() << " blocks, "
      << numEdges() << " edges\n";
  for (const auto& b : blocks_) {
    out << "  B" << b.id << " [" << b.firstInstr << ".." << b.lastInstr
        << "]";
    if (b.callee >= 0) out << " calls fn" << b.callee;
    if (b.isExit) out << " exit";
    out << "\n";
    for (int i = b.firstInstr; i <= b.lastInstr; ++i) {
      out << "    " << padLeft(std::to_string(i), 4) << ": "
          << vm::disasmInstr(fn.code[static_cast<std::size_t>(i)]) << "\n";
    }
  }
  for (const auto& e : edges_) {
    out << "  d" << e.id << ": ";
    if (e.isEntry()) {
      out << "entry";
    } else {
      out << "B" << e.from;
    }
    out << " -> ";
    if (e.isExit()) {
      out << "exit";
    } else {
      out << "B" << e.to;
    }
    if (e.isCall()) out << " (call fn" << e.callee << ")";
    out << "\n";
  }
  return out.str();
}

ControlFlowGraph buildCfg(const vm::Module& module, int functionIndex) {
  const vm::Function& fn = module.function(functionIndex);
  const int n = static_cast<int>(fn.code.size());
  CIN_REQUIRE(n > 0);

  // Leaders: instruction 0, every branch target, every instruction that
  // follows a control-flow instruction.
  std::set<int> leaders{0};
  for (int i = 0; i < n; ++i) {
    const vm::Instr& in = fn.code[static_cast<std::size_t>(i)];
    switch (in.op) {
      case vm::Opcode::Br:
      case vm::Opcode::Bt:
      case vm::Opcode::Bf: {
        const int target = static_cast<int>(in.imm);
        CIN_REQUIRE(target >= 0 && target <= n);
        if (target < n) leaders.insert(target);
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      }
      case vm::Opcode::Call:
      case vm::Opcode::Ret:
      case vm::Opcode::Halt:
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      default:
        break;
    }
  }

  ControlFlowGraph cfg;
  cfg.functionIndex_ = functionIndex;
  cfg.instrToBlock_.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> leaderList(leaders.begin(), leaders.end());
  for (std::size_t bi = 0; bi < leaderList.size(); ++bi) {
    BasicBlock b;
    b.id = static_cast<int>(bi);
    b.firstInstr = leaderList[bi];
    b.lastInstr = (bi + 1 < leaderList.size()) ? leaderList[bi + 1] - 1 : n - 1;
    for (int i = b.firstInstr; i <= b.lastInstr; ++i) {
      cfg.instrToBlock_[static_cast<std::size_t>(i)] = b.id;
      const int line = fn.code[static_cast<std::size_t>(i)].loc.line;
      if (line > 0) {
        // firstLine is the line the block *starts* on (first instruction
        // with a known location) — the anchor for @line references;
        // lastLine is the furthest line it covers.
        if (b.firstLine == 0) b.firstLine = line;
        if (line > b.lastLine) b.lastLine = line;
      }
    }
    cfg.blocks_.push_back(std::move(b));
  }

  auto addEdge = [&](int from, int to, int callee) {
    Edge e;
    e.id = static_cast<int>(cfg.edges_.size());
    e.from = from;
    e.to = to;
    e.callee = callee;
    if (from != kBoundary) {
      cfg.blocks_[static_cast<std::size_t>(from)].succEdges.push_back(e.id);
    }
    if (to != kBoundary) {
      cfg.blocks_[static_cast<std::size_t>(to)].predEdges.push_back(e.id);
    }
    cfg.edges_.push_back(e);
    return e.id;
  };

  // Entry edge first — it is the paper's d1 with the constraint d1 = 1.
  cfg.entryEdge_ = addEdge(kBoundary, 0, -1);

  for (auto& b : cfg.blocks_) {
    const vm::Instr& last = fn.code[static_cast<std::size_t>(b.lastInstr)];
    const int next = b.lastInstr + 1;
    switch (last.op) {
      case vm::Opcode::Br:
        addEdge(b.id, cfg.blockOfInstr(static_cast<int>(last.imm)), -1);
        break;
      case vm::Opcode::Bt:
      case vm::Opcode::Bf: {
        // Taken edge, then fall-through edge.
        addEdge(b.id, cfg.blockOfInstr(static_cast<int>(last.imm)), -1);
        CIN_REQUIRE(next < n);
        addEdge(b.id, cfg.blockOfInstr(next), -1);
        break;
      }
      case vm::Opcode::Call: {
        b.callee = static_cast<int>(last.imm);
        // Call edge to the continuation block (paper's f-edge).  A Ret
        // must follow eventually, so `next` is in range for well-formed
        // code; tolerate a trailing call by marking the block exit.
        if (next < n) {
          addEdge(b.id, cfg.blockOfInstr(next), b.callee);
        } else {
          b.isExit = true;
          cfg.exitEdges_.push_back(addEdge(b.id, kBoundary, b.callee));
        }
        break;
      }
      case vm::Opcode::Ret:
      case vm::Opcode::Halt:
        b.isExit = true;
        cfg.exitEdges_.push_back(addEdge(b.id, kBoundary, -1));
        break;
      default:
        // Fall-through into the next block.
        CIN_REQUIRE(next < n);
        addEdge(b.id, cfg.blockOfInstr(next), -1);
        break;
    }
  }

  return cfg;
}

}  // namespace cinderella::cfg
