// Natural-loop detection, used to (a) locate where user loop-bound
// annotations attach and (b) implement the paper's Section IV refinement
// of splitting a loop's first iteration.
#pragma once

#include <vector>

#include "cinderella/cfg/cfg.hpp"
#include "cinderella/cfg/dominators.hpp"

namespace cinderella::cfg {

struct NaturalLoop {
  /// Loop header block (dominates every member).
  int header = -1;
  /// Latch blocks: sources of back edges into the header.
  std::vector<int> latches;
  /// All member block ids, header included, sorted ascending.
  std::vector<int> blocks;
  /// Edge ids entering the header from outside the loop (loop-entry
  /// edges; their count sum is the number of times the loop is entered).
  std::vector<int> entryEdges;

  [[nodiscard]] bool contains(int block) const;
};

/// Finds all natural loops of `cfg`; loops sharing a header are merged
/// (as is conventional).  Returns loops sorted by header block id.
[[nodiscard]] std::vector<NaturalLoop> findLoops(const ControlFlowGraph& cfg,
                                                 const DominatorTree& dom);

}  // namespace cinderella::cfg
