// Module-level call graph: which functions call which, reachability from
// a root, and topological ordering (recursion is rejected upstream, so
// the graph is a DAG for analysable programs).
#pragma once

#include <vector>

#include "cinderella/vm/module.hpp"

namespace cinderella::cfg {

class CallGraph {
 public:
  explicit CallGraph(const vm::Module& module);

  /// Distinct callee indices of `function`.
  [[nodiscard]] const std::vector<int>& callees(int function) const {
    return callees_[static_cast<std::size_t>(function)];
  }

  /// True when the call graph contains a cycle (recursion).
  [[nodiscard]] bool hasCycle() const { return hasCycle_; }

  /// Functions reachable from `root` (root included), in a bottom-up
  /// (callees-first) topological order.  Requires !hasCycle().
  [[nodiscard]] std::vector<int> bottomUpOrder(int root) const;

 private:
  std::vector<std::vector<int>> callees_;
  bool hasCycle_ = false;
};

}  // namespace cinderella::cfg
