// Control-flow graphs over VISA functions.
//
// Terminology follows the paper: basic blocks carry `x` variables, flow
// edges carry `d` variables, call edges carry `f` variables.  A call
// instruction terminates its block; the edge from the call block to the
// continuation block is a *call edge* (the paper's f-edge) tagged with
// the callee, because control flows to the continuation only by passing
// through the callee.
#pragma once

#include <string>
#include <vector>

#include "cinderella/vm/module.hpp"

namespace cinderella::cfg {

/// Pseudo block id used as the source of the entry edge and the target
/// of exit edges.
inline constexpr int kBoundary = -1;

struct BasicBlock {
  int id = 0;
  int firstInstr = 0;
  int lastInstr = 0;  // inclusive
  std::vector<int> succEdges;  // edge ids leaving this block
  std::vector<int> predEdges;  // edge ids entering this block
  /// Callee function index when the block ends in Call, else -1.
  int callee = -1;
  /// True when the block ends in Ret (or falls off the function end).
  bool isExit = false;
  /// Source line span covered by the block's instructions (0 = unknown).
  int firstLine = 0;
  int lastLine = 0;

  [[nodiscard]] int numInstrs() const { return lastInstr - firstInstr + 1; }
};

struct Edge {
  int id = 0;
  int from = kBoundary;  // block id or kBoundary for the entry edge
  int to = kBoundary;    // block id or kBoundary for exit edges
  /// Callee function index for call edges (the paper's f-edges), else -1.
  int callee = -1;

  [[nodiscard]] bool isCall() const { return callee >= 0; }
  [[nodiscard]] bool isEntry() const { return from == kBoundary; }
  [[nodiscard]] bool isExit() const { return to == kBoundary; }
};

/// CFG of a single function.  Block 0 is always the entry block.
class ControlFlowGraph {
 public:
  ControlFlowGraph() = default;

  [[nodiscard]] int functionIndex() const { return functionIndex_; }
  [[nodiscard]] int numBlocks() const {
    return static_cast<int>(blocks_.size());
  }
  [[nodiscard]] int numEdges() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] const BasicBlock& block(int id) const {
    return blocks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Edge& edge(int id) const {
    return edges_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Id of the entry edge (boundary -> block 0).
  [[nodiscard]] int entryEdge() const { return entryEdge_; }
  /// Ids of all exit edges (ret block -> boundary).
  [[nodiscard]] const std::vector<int>& exitEdges() const {
    return exitEdges_;
  }

  /// Block containing instruction `instrIndex`.
  [[nodiscard]] int blockOfInstr(int instrIndex) const;

  /// Successor block ids of `id` (excluding boundary).
  [[nodiscard]] std::vector<int> successors(int id) const;
  /// Predecessor block ids of `id` (excluding boundary).
  [[nodiscard]] std::vector<int> predecessors(int id) const;

  /// Multi-line dump for debugging: blocks, instruction ranges, edges.
  [[nodiscard]] std::string str(const vm::Module& module) const;

 private:
  friend ControlFlowGraph buildCfg(const vm::Module& module,
                                   int functionIndex);

  int functionIndex_ = -1;
  std::vector<BasicBlock> blocks_;
  std::vector<Edge> edges_;
  std::vector<int> instrToBlock_;
  int entryEdge_ = -1;
  std::vector<int> exitEdges_;
};

/// Builds the CFG of `module.function(functionIndex)`.  The function must
/// be non-empty and the module laid out.
[[nodiscard]] ControlFlowGraph buildCfg(const vm::Module& module,
                                        int functionIndex);

}  // namespace cinderella::cfg
