// Graphviz (dot) export of control-flow graphs — blocks labelled the
// paper's way (x variables, source line spans) and edges labelled with
// their d/f variables.
#pragma once

#include <string>

#include "cinderella/cfg/cfg.hpp"

namespace cinderella::cfg {

/// One function's CFG as a dot digraph.
[[nodiscard]] std::string toDot(const vm::Module& module,
                                const ControlFlowGraph& cfg);

/// Whole module: one cluster per function, call edges between clusters.
[[nodiscard]] std::string moduleToDot(const vm::Module& module);

}  // namespace cinderella::cfg
