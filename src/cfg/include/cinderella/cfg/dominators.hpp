// Dominator analysis over a ControlFlowGraph (iterative data-flow
// formulation of Cooper/Harvey/Kennedy).
#pragma once

#include <vector>

#include "cinderella/cfg/cfg.hpp"

namespace cinderella::cfg {

class DominatorTree {
 public:
  explicit DominatorTree(const ControlFlowGraph& cfg);

  /// Immediate dominator of `block`, or -1 for the entry block and for
  /// blocks unreachable from the entry.
  [[nodiscard]] int idom(int block) const {
    return idom_[static_cast<std::size_t>(block)];
  }

  /// True when `a` dominates `b` (reflexive).
  [[nodiscard]] bool dominates(int a, int b) const;

  /// True when `block` is reachable from the entry block.
  [[nodiscard]] bool reachable(int block) const {
    return block == 0 || idom_[static_cast<std::size_t>(block)] >= 0;
  }

 private:
  std::vector<int> idom_;
};

}  // namespace cinderella::cfg
