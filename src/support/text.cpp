#include "cinderella/support/text.hpp"

#include <cmath>
#include <cstdio>

namespace cinderella {

std::vector<std::string> splitLines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

std::string padLeft(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string padRight(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string withThousands(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string intervalStr(std::int64_t lo, std::int64_t hi) {
  return "[" + withThousands(lo) + ", " + withThousands(hi) + "]";
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace cinderella
