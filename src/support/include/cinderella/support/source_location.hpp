// Lightweight source positions for MiniC programs and constraint strings.
#pragma once

#include <string>

namespace cinderella {

/// A 1-based line/column position in an input text.  Line 0 means
/// "unknown" (used for synthesized nodes).
struct SourceLoc {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool isKnown() const { return line > 0; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Half-open range of source lines covered by a construct.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace cinderella
