// Deterministic fault injection — the seam that lets tests and the fuzz
// oracle prove the solve engine's degradation paths stay sound.
//
// A FaultInjector is installed process-wide (like the MetricsSink) and
// consulted at five sites:
//
//   * LpPivot        — the simplex pivot loop throws InjectedFaultError,
//                      emulating a numeric breakdown mid-solve;
//   * ThreadPoolTask — the work-stealing pool drops a claimed task on the
//                      floor (it completes without running), emulating a
//                      lost per-constraint-set solve;
//   * DeadlineClock  — the analyzer's deadline check reports "expired"
//                      spuriously, emulating clock faults and exercising
//                      the partial-result path without real waiting;
//   * SnapshotWrite  — support::io's file writers stop after a prefix of
//                      the bytes and report failure, emulating ENOSPC or
//                      a crash mid-write (the torn file stays on disk);
//   * SnapshotFsync  — support::io's fsync reports failure, emulating a
//                      dying disk, so durable-write callers must treat
//                      the data as not yet persisted.
//
// Decisions are a pure function of (seed, site, per-site call counter),
// so a single-threaded run replays bit-for-bit from the seed alone.
// When nothing is installed — the default — each site costs one relaxed
// atomic load and a never-taken branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace cinderella::support {

enum class FaultSite : int {
  LpPivot = 0,
  ThreadPoolTask = 1,
  DeadlineClock = 2,
  SnapshotWrite = 3,
  SnapshotFsync = 4,
};
inline constexpr int kNumFaultSites = 5;

[[nodiscard]] const char* faultSiteStr(FaultSite site);

/// Per-site fault rates in [0, 1]; 0 disables a site entirely.
struct FaultPlan {
  std::uint64_t seed = 1;
  double lpPivotRate = 0.0;
  double threadTaskRate = 0.0;
  double deadlineClockRate = 0.0;
  double snapshotWriteRate = 0.0;
  double snapshotFsyncRate = 0.0;

  [[nodiscard]] double rate(FaultSite site) const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// True when this opportunity must fault.  Thread-safe; deterministic
  /// in the per-site call sequence (splitmix64 of seed ^ site ^ counter).
  [[nodiscard]] bool shouldFault(FaultSite site);

  /// Opportunities seen / faults injected at `site` so far.
  [[nodiscard]] std::int64_t calls(FaultSite site) const;
  [[nodiscard]] std::int64_t injected(FaultSite site) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> calls_{};
  std::array<std::atomic<std::int64_t>, kNumFaultSites> injected_{};
};

/// The currently installed injector, or nullptr (the default: no faults).
[[nodiscard]] FaultInjector* faultInjector() noexcept;

/// Installs `injector` (nullptr to disable); returns the previous one.
FaultInjector* setFaultInjector(FaultInjector* injector) noexcept;

/// RAII install/restore, mirroring obs::ScopedMetricsSink.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(setFaultInjector(injector)) {}
  ~ScopedFaultInjector() { setFaultInjector(previous_); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace cinderella::support
