// Bounded least-recently-used map, the eviction policy under the
// persistent solve cache.
//
// Header-only and deliberately unsynchronized: the owner (e.g.
// ipet::SolveCache) holds its own mutex around every call, and keeping
// the lock outside lets one critical section cover a lookup plus the
// stats update it implies.  Keys need operator< (ordered map index —
// the cache keys are 128-bit digests, which order trivially).
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <utility>

namespace cinderella::support {

template <typename Key, typename Value>
class LruMap {
 public:
  /// `capacity` 0 means every insert is a no-op and find always misses.
  explicit LruMap(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return index_.size(); }

  /// Returns the value for `key` (marking it most-recently-used), or
  /// nullptr.  The pointer is valid until the next mutating call.
  Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `key` (marking it most-recently-used) and
  /// evicts the least-recently-used entry when over capacity.  Returns
  /// the number of entries evicted (0 or 1; 0 also when capacity is 0
  /// and the insert was dropped).
  std::size_t insert(const Key& key, Value value) {
    if (capacity_ == 0) return 0;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return 0;
    }
    items_.emplace_front(key, std::move(value));
    index_.emplace(key, items_.begin());
    if (index_.size() <= capacity_) return 0;
    index_.erase(items_.back().first);
    items_.pop_back();
    return 1;
  }

  void clear() {
    items_.clear();
    index_.clear();
  }

  /// Visits every (key, value) pair from least- to most-recently-used,
  /// so a snapshot replayed through insert() restores the recency order.
  template <typename Fn>
  void forEachOldestFirst(Fn&& fn) const {
    for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
      fn(it->first, it->second);
    }
  }

 private:
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<Key, Value>> items_;
  std::map<Key, typename std::list<std::pair<Key, Value>>::iterator> index_;
};

}  // namespace cinderella::support
