// Error-handling primitives shared across the cinderella-ipet library.
//
// The library reports unrecoverable misuse and malformed inputs with
// exceptions derived from `Error`; each analysis phase uses its own
// subclass so callers can distinguish frontend errors (bad MiniC source)
// from analysis errors (e.g. missing loop bounds) or solver errors.
#pragma once

#include <stdexcept>
#include <string>

namespace cinderella {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed MiniC source or constraint text (lexer/parser/sema).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Semantically invalid input to an analysis (e.g. recursion, unbounded
/// loop without an annotation, reference to an unknown variable).
class AnalysisError : public Error {
 public:
  using Error::Error;
};

/// Internal solver failure (numerical breakdown, iteration limit).
class SolverError : public Error {
 public:
  using Error::Error;
};

/// Runtime fault inside the VISA simulator (out-of-bounds access,
/// division by zero, step-limit exhaustion).
class SimulationError : public Error {
 public:
  using Error::Error;
};

/// Thrown by a fault-injection site (see fault_injector.hpp).  A
/// SolverError subclass so every degradation path treats an injected
/// fault exactly like the real numeric breakdown it emulates.
class InjectedFaultError : public SolverError {
 public:
  using SolverError::SolverError;
};

/// Machine-readable cause attached to a degraded or failed solve (see
/// ipet::SolveIssue).  Stable strings via errorCodeStr for reports.
enum class ErrorCode {
  None,
  DeadlineExpired,    ///< SolveControl::deadline ran out.
  Cancelled,          ///< SolveControl::cancel was set.
  NodeBudgetExhausted,///< Branch-and-bound hit its maxNodes budget.
  PivotLimit,         ///< Simplex hit maxPivots even after Bland retry.
  NumericOverflow,    ///< Objective exceeded 64-bit range (saturated).
  InjectedFault,      ///< A FaultInjector site fired.
  TaskLost,           ///< A per-set solve task never ran.
  MemoryCeiling,      ///< SolveControl::maxMemoryBytes would be exceeded.
  Internal,           ///< Invariant violation or unexpected exception.
};

[[nodiscard]] inline const char* errorCodeStr(ErrorCode code) {
  switch (code) {
    case ErrorCode::None:
      return "none";
    case ErrorCode::DeadlineExpired:
      return "deadline-expired";
    case ErrorCode::Cancelled:
      return "cancelled";
    case ErrorCode::NodeBudgetExhausted:
      return "node-budget-exhausted";
    case ErrorCode::PivotLimit:
      return "pivot-limit";
    case ErrorCode::NumericOverflow:
      return "numeric-overflow";
    case ErrorCode::InjectedFault:
      return "injected-fault";
    case ErrorCode::TaskLost:
      return "task-lost";
    case ErrorCode::MemoryCeiling:
      return "memory-ceiling";
    case ErrorCode::Internal:
      return "internal";
  }
  return "?";
}

namespace detail {
[[noreturn]] inline void throwRequireFailed(const char* cond, const char* file,
                                            int line) {
  throw Error(std::string("internal invariant violated: ") + cond + " at " +
              file + ":" + std::to_string(line));
}
}  // namespace detail

/// Internal invariant check that stays on in release builds.  Use for
/// conditions whose violation indicates a bug in this library rather than
/// bad user input.
#define CIN_REQUIRE(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::cinderella::detail::throwRequireFailed(#cond, __FILE__, __LINE__); \
    }                                                                  \
  } while (false)

}  // namespace cinderella
