// Checked 64-bit integer arithmetic with __int128 promotion — the
// numeric core of the fault-tolerant solve engine.
//
// Cycle costs and flow counts are integers, so the analyzer's objective
// values are exact integers too; accumulating them in doubles silently
// loses precision past 2^53 and wrapping std::int64_t is undefined
// behaviour.  These helpers make both failure modes explicit: the fast
// path is plain 64-bit arithmetic with compiler-builtin overflow checks,
// and on the first overflow the caller retries the whole accumulation in
// __int128, saturating (with a flag) only when even 128 bits cannot be
// narrowed back to 64.
#pragma once

#include <cstdint>
#include <limits>

namespace cinderella::support {

/// True iff a + b overflowed; on success *out holds the sum.
[[nodiscard]] inline bool addOverflow(std::int64_t a, std::int64_t b,
                                      std::int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}

/// True iff a * b overflowed; on success *out holds the product.
[[nodiscard]] inline bool mulOverflow(std::int64_t a, std::int64_t b,
                                      std::int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

/// Result of an exact integer accumulation (see accumulateProducts).
struct CheckedSum {
  std::int64_t value = 0;
  /// The 64-bit fast path overflowed and the sum was redone in __int128.
  bool promoted = false;
  /// Even the __int128 total does not fit std::int64_t; `value` is
  /// saturated to the nearest representable bound.
  bool saturated = false;
};

/// Sum of coeffs[i] * values[i] over n terms, exact.  Runs the 64-bit
/// checked fast path first and retries in __int128 on overflow;
/// saturates to ±INT64_MAX/MIN with `saturated` set when the true total
/// leaves 64-bit range.  (A product of two int64 always fits __int128,
/// and IPET systems have far fewer than 2^64 terms, so the __int128
/// accumulation itself cannot wrap.)
template <typename CoeffFn, typename ValueFn>
[[nodiscard]] CheckedSum accumulateProducts(std::size_t n, CoeffFn coeff,
                                            ValueFn value) {
  CheckedSum result;
  bool overflowed = false;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t term = 0;
    if (mulOverflow(coeff(i), value(i), &term) ||
        addOverflow(total, term, &total)) {
      overflowed = true;
      break;
    }
  }
  if (!overflowed) {
    result.value = total;
    return result;
  }

  result.promoted = true;
  __int128 wide = 0;
  for (std::size_t i = 0; i < n; ++i) {
    wide += static_cast<__int128>(coeff(i)) * static_cast<__int128>(value(i));
  }
  constexpr __int128 kMax = std::numeric_limits<std::int64_t>::max();
  constexpr __int128 kMin = std::numeric_limits<std::int64_t>::min();
  if (wide > kMax) {
    result.value = std::numeric_limits<std::int64_t>::max();
    result.saturated = true;
  } else if (wide < kMin) {
    result.value = std::numeric_limits<std::int64_t>::min();
    result.saturated = true;
  } else {
    result.value = static_cast<std::int64_t>(wide);
  }
  return result;
}

}  // namespace cinderella::support
