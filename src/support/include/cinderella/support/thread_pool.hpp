// Work-stealing thread pool used by the parallel solve engine.
//
// The IPET estimator solves one ILP per conjunctive constraint set (two,
// in fact: max and min) — an embarrassingly parallel fan-out.  This pool
// runs those coarse-grained tasks: each worker owns a deque, pops its own
// work LIFO from the back, and steals FIFO from the front of a sibling's
// deque when its own runs dry.  Submissions are distributed round-robin
// so a burst of per-set tasks spreads across workers up front and
// stealing only smooths out imbalance (some sets solve much faster than
// others, e.g. pruned null sets).
//
// Tasks must not throw: an exception escaping a task terminates the
// process.  Callers that need error propagation capture a
// std::exception_ptr inside the task (see Analyzer::estimate).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cinderella::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers; `threads <= 0` means hardwareThreads().
  explicit ThreadPool(int threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Safe to call from any thread, including from
  /// inside a running task.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.  The pool
  /// stays usable afterwards.
  void wait();

  [[nodiscard]] int numThreads() const {
    return static_cast<int>(workers_.size());
  }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static int hardwareThreads();

 private:
  struct WorkDeque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops from the back of the caller's own deque, else steals from the
  /// front of a sibling's.  Returns false when every deque looked empty.
  bool popOrSteal(std::size_t self, std::function<void()>* task);
  void workerLoop(std::size_t self);

  std::vector<std::unique_ptr<WorkDeque>> queues_;
  std::vector<std::thread> workers_;

  /// Guards the counters below; the per-deque mutexes guard only tasks.
  std::mutex mutex_;
  std::condition_variable workCv_;  ///< Wakes workers on submit/stop.
  std::condition_variable idleCv_;  ///< Wakes wait() on completion.
  std::size_t available_ = 0;   ///< Tasks queued but not yet claimed.
  std::size_t unfinished_ = 0;  ///< Tasks submitted but not yet finished.
  std::size_t nextQueue_ = 0;   ///< Round-robin submission target.
  bool stop_ = false;
};

}  // namespace cinderella::support
