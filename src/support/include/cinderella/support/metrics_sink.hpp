// Injectable metrics sink — the seam between the low-level solvers and
// the observability subsystem.
//
// `src/lp`, `src/ilp` and the thread pool sit below `src/obs` in the
// dependency order, so they cannot talk to obs::MetricsRegistry
// directly.  Instead they report through this minimal interface: a
// process-wide pointer that obs (or a test) installs.  When nothing is
// installed — the default — every instrumentation site costs exactly one
// relaxed atomic load followed by a never-taken branch, so the solvers
// pay nothing for observability they are not using.
//
// The installed sink must be thread-safe: the parallel solve engine
// reports from every worker concurrently.
#pragma once

#include <cstdint>
#include <string_view>

namespace cinderella::support {

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  /// Adds `delta` to the named monotonic counter.
  virtual void add(std::string_view counter, std::int64_t delta) = 0;

  /// Records one sample of the named distribution (pivots, nodes, µs).
  virtual void observe(std::string_view histogram, std::int64_t value) = 0;
};

/// The currently installed sink, or nullptr when observability is off.
/// One relaxed atomic load; call once per instrumentation site.
[[nodiscard]] MetricsSink* metricsSink() noexcept;

/// Installs `sink` (nullptr to disable) and returns the previous sink.
/// Callers are responsible for restoring the previous sink; see
/// obs::ScopedMetricsSink for the RAII form.
MetricsSink* setMetricsSink(MetricsSink* sink) noexcept;

}  // namespace cinderella::support
