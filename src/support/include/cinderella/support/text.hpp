// Small text utilities used by dumpers and table writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cinderella {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> splitLines(std::string_view text);

/// Returns `s` left-padded with spaces to at least `width` characters.
std::string padLeft(std::string_view s, std::size_t width);

/// Returns `s` right-padded with spaces to at least `width` characters.
std::string padRight(std::string_view s, std::size_t width);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string withThousands(std::int64_t value);

/// Formats a cycle interval "[lo, hi]" with thousands separators.
std::string intervalStr(std::int64_t lo, std::int64_t hi);

/// Fixed-point formatting with `digits` decimals (no locale dependence).
std::string fixed(double value, int digits);

/// A minimal deterministic xorshift64* generator for property tests and
/// workload generators.  Never seeded from the clock.
class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace cinderella
