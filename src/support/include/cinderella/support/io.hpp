// Checked low-level I/O, shared by the serve socket loops and the
// SolveCache's durable snapshots:
//
//   * sendAll / recvSome — EINTR-safe, partial-write-safe socket
//     primitives, so every serve loop handles signal interruption and
//     short transfers the same way instead of five hand-rolled copies;
//   * writeFileAtomic — crash-safe whole-file replacement: write a
//     sibling temp file, fsync it, rename() over the target, fsync the
//     directory.  A kill -9 at any instant leaves either the complete
//     old file or the complete new file, never a torn mixture;
//   * appendDurable — append a record to a log file and fsync it, the
//     journal primitive (a crash can tear only the final record, which
//     the reader's per-record CRC detects);
//   * crc32 — the IEEE polynomial, used to frame snapshot sections and
//     journal records.
//
// The file-writing helpers consult the process-wide FaultInjector
// (FaultSite::SnapshotWrite / SnapshotFsync) so tests and the chaos
// harness can force short writes and failed fsyncs deterministically: an
// injected short write really does leave a torn prefix on disk, which is
// exactly what the recovery paths must survive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include <sys/types.h>

namespace cinderella::support::io {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Sends every byte of `bytes` on socket `fd`, retrying EINTR and short
/// sends; MSG_NOSIGNAL so a dead peer yields an error, not SIGPIPE.
[[nodiscard]] bool sendAll(int fd, std::string_view bytes);

/// One recv() with EINTR retried.  Returns the byte count (0 = peer
/// closed) or -1 on any other error.
[[nodiscard]] ssize_t recvSome(int fd, char* buf, std::size_t len);

/// Atomically replaces `path` with `bytes` (temp + fsync + rename +
/// directory fsync).  Returns false with a diagnostic in `error`; on
/// failure the previous contents of `path` are untouched and the temp
/// file is removed.  Fault-injectable (short write, failed fsync).
[[nodiscard]] bool writeFileAtomic(const std::string& path,
                                   std::string_view bytes,
                                   std::string* error);

/// Appends `bytes` to `path` (creating it if absent) and fsyncs.
/// Returns false with a diagnostic on failure; an injected short write
/// deliberately leaves a torn prefix of `bytes` on disk, emulating a
/// crash mid-append.
[[nodiscard]] bool appendDurable(const std::string& path,
                                 std::string_view bytes, std::string* error);

}  // namespace cinderella::support::io
