#include "cinderella/support/io.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "cinderella/support/fault_injector.hpp"

namespace cinderella::support::io {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string errnoDetail(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

/// Writes all of `bytes` to `fd`, retrying EINTR and short writes.  An
/// injected SnapshotWrite fault writes only a prefix and reports
/// failure — the torn file it leaves behind is the point.
bool writeAllFd(int fd, std::string_view bytes, const std::string& path,
                std::string* error) {
  if (FaultInjector* injector = faultInjector();
      injector != nullptr && injector->shouldFault(FaultSite::SnapshotWrite)) {
    const std::size_t torn = bytes.size() / 2;
    std::size_t sent = 0;
    while (sent < torn) {
      const ssize_t n = ::write(fd, bytes.data() + sent, torn - sent);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (error != nullptr) {
      *error = "injected short write to '" + path + "' (" +
               std::to_string(sent) + "/" + std::to_string(bytes.size()) +
               " bytes)";
    }
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errnoDetail("write", path);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool fsyncFd(int fd, const std::string& path, std::string* error) {
  if (FaultInjector* injector = faultInjector();
      injector != nullptr && injector->shouldFault(FaultSite::SnapshotFsync)) {
    if (error != nullptr) *error = "injected fsync failure on '" + path + "'";
    return false;
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (error != nullptr) *error = errnoDetail("fsync", path);
    return false;
  }
  return true;
}

/// Best-effort fsync of the directory containing `path`, making the
/// rename itself durable.  Failure is not fatal: the file contents are
/// already synced, only the directory entry might replay.
void fsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." :
                          slash == 0 ? "/" : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool sendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t recvSome(int fd, char* buf, std::size_t len) {
  ssize_t n;
  do {
    n = ::recv(fd, buf, len, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

bool writeFileAtomic(const std::string& path, std::string_view bytes,
                     std::string* error) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = errnoDetail("open", temp);
    return false;
  }
  if (!writeAllFd(fd, bytes, temp, error) || !fsyncFd(fd, temp, error)) {
    ::close(fd);
    ::unlink(temp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(temp.c_str(), path.c_str()) < 0) {
    if (error != nullptr) *error = errnoDetail("rename", temp);
    ::unlink(temp.c_str());
    return false;
  }
  fsyncParentDir(path);
  return true;
}

bool appendDurable(const std::string& path, std::string_view bytes,
                   std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = errnoDetail("open", path);
    return false;
  }
  const bool ok =
      writeAllFd(fd, bytes, path, error) && fsyncFd(fd, path, error);
  ::close(fd);
  return ok;
}

}  // namespace cinderella::support::io
