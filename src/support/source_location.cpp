#include "cinderella/support/source_location.hpp"

namespace cinderella {

std::string SourceLoc::str() const {
  if (!isKnown()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(column);
}

}  // namespace cinderella
