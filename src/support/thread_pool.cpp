#include "cinderella/support/thread_pool.hpp"

#include "cinderella/support/error.hpp"
#include "cinderella/support/fault_injector.hpp"
#include "cinderella/support/metrics_sink.hpp"

namespace cinderella::support {

int ThreadPool::hardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardwareThreads();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { workerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CIN_REQUIRE(task != nullptr);
  std::size_t target;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CIN_REQUIRE(!stop_);
    target = nextQueue_++ % queues_.size();
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // The task is visible in its deque before the availability count rises,
  // so a worker that claims a slot is guaranteed to find work somewhere.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++available_;
    ++unfinished_;
  }
  workCv_.notify_one();
  if (MetricsSink* const sink = metricsSink()) sink->add("pool.tasks", 1);
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] { return unfinished_ == 0; });
}

bool ThreadPool::popOrSteal(std::size_t self, std::function<void()>* task) {
  {
    WorkDeque& own = *queues_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    WorkDeque& victim = *queues_[(self + i) % queues_.size()];
    {
      const std::lock_guard<std::mutex> lock(victim.mutex);
      if (victim.tasks.empty()) continue;
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
    }
    if (MetricsSink* const sink = metricsSink()) sink->add("pool.steals", 1);
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [&] { return stop_ || available_ > 0; });
      if (available_ == 0) return;  // stop requested, queues drained
      --available_;
    }
    std::function<void()> task;
    // A claimed slot guarantees a task exists, but a sibling that also
    // claimed one may empty the deque we scan first; retry until found.
    while (!popOrSteal(self, &task)) std::this_thread::yield();
    // Fault-injection seam: drop the claimed task on the floor (it still
    // counts as finished, so wait() returns).  Emulates a lost solve task;
    // callers must detect the hole themselves — see analyzer.cpp.
    FaultInjector* const injector = faultInjector();
    const bool dropped =
        injector != nullptr && injector->shouldFault(FaultSite::ThreadPoolTask);
    if (!dropped) task();
    task = nullptr;  // destroy the closure before reporting completion
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--unfinished_ == 0) idleCv_.notify_all();
    }
  }
}

}  // namespace cinderella::support
