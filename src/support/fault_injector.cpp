#include "cinderella/support/fault_injector.hpp"

namespace cinderella::support {

namespace {

std::atomic<FaultInjector*> gInjector{nullptr};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* faultSiteStr(FaultSite site) {
  switch (site) {
    case FaultSite::LpPivot:
      return "lp-pivot";
    case FaultSite::ThreadPoolTask:
      return "thread-pool-task";
    case FaultSite::DeadlineClock:
      return "deadline-clock";
    case FaultSite::SnapshotWrite:
      return "snapshot-write";
    case FaultSite::SnapshotFsync:
      return "snapshot-fsync";
  }
  return "?";
}

double FaultPlan::rate(FaultSite site) const {
  switch (site) {
    case FaultSite::LpPivot:
      return lpPivotRate;
    case FaultSite::ThreadPoolTask:
      return threadTaskRate;
    case FaultSite::DeadlineClock:
      return deadlineClockRate;
    case FaultSite::SnapshotWrite:
      return snapshotWriteRate;
    case FaultSite::SnapshotFsync:
      return snapshotFsyncRate;
  }
  return 0.0;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

bool FaultInjector::shouldFault(FaultSite site) {
  const double rate = plan_.rate(site);
  const auto index = static_cast<std::size_t>(site);
  const std::uint64_t call =
      calls_[index].fetch_add(1, std::memory_order_relaxed);
  if (rate <= 0.0) return false;
  // Map the (seed, site, call) hash onto [0, 1) and compare against the
  // site's rate; rate >= 1 faults every opportunity.
  const std::uint64_t h =
      splitmix64(plan_.seed ^ (0x51ED2700F7B3E5D1ULL *
                               (static_cast<std::uint64_t>(site) + 1)) ^
                 (call * 0xD6E8FEB86659FD93ULL));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  if (u >= rate) return false;
  injected_[index].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::int64_t FaultInjector::calls(FaultSite site) const {
  return static_cast<std::int64_t>(
      calls_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed));
}

std::int64_t FaultInjector::injected(FaultSite site) const {
  return injected_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

FaultInjector* faultInjector() noexcept {
  return gInjector.load(std::memory_order_relaxed);
}

FaultInjector* setFaultInjector(FaultInjector* injector) noexcept {
  return gInjector.exchange(injector, std::memory_order_acq_rel);
}

}  // namespace cinderella::support
