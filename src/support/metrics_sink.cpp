#include "cinderella/support/metrics_sink.hpp"

#include <atomic>

namespace cinderella::support {

namespace {
std::atomic<MetricsSink*> gSink{nullptr};
}  // namespace

MetricsSink* metricsSink() noexcept {
  return gSink.load(std::memory_order_relaxed);
}

MetricsSink* setMetricsSink(MetricsSink* sink) noexcept {
  return gSink.exchange(sink, std::memory_order_acq_rel);
}

}  // namespace cinderella::support
