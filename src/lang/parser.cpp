#include "cinderella/lang/parser.hpp"

#include <utility>

#include "cinderella/lang/lexer.hpp"
#include "cinderella/support/error.hpp"

namespace cinderella::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source)
      : tokens_(lex(source)) {
    program_.sourceText = std::string(source);
  }

  Program run() {
    while (!at(TokenKind::End)) parseTopLevel();
    return std::move(program_);
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }

  const Token& advance() { return tokens_[pos_++]; }

  const Token& expect(TokenKind kind, const char* context) {
    if (!at(kind)) {
      fail(std::string("expected ") + tokenKindName(kind) + " " + context +
           ", found " + tokenKindName(peek().kind));
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("parse error at " + peek().loc.str() + ": " + message);
  }

  bool atType() const {
    return at(TokenKind::KwInt) || at(TokenKind::KwFloat);
  }

  Type parseType() {
    if (at(TokenKind::KwInt)) {
      advance();
      return Type::Int;
    }
    if (at(TokenKind::KwFloat)) {
      advance();
      return Type::Float;
    }
    fail("expected a type");
  }

  // -------------------------------------------------------------------
  // Top level.

  void parseTopLevel() {
    const SourceLoc loc = peek().loc;
    Type type = Type::Void;
    if (at(TokenKind::KwVoid)) {
      advance();
    } else {
      type = parseType();
    }
    const Token& nameTok = expect(TokenKind::Identifier, "after type");
    if (at(TokenKind::LParen)) {
      parseFunctionRest(type, nameTok.text, loc);
    } else {
      if (type == Type::Void) fail("global variables cannot be void");
      parseGlobalRest(type, nameTok.text, loc);
    }
  }

  void parseGlobalRest(Type type, const std::string& name, SourceLoc loc) {
    GlobalDecl g;
    g.name = name;
    g.type = type;
    g.loc = loc;
    if (at(TokenKind::LBracket)) {
      advance();
      const Token& size = expect(TokenKind::IntLiteral, "as array size");
      if (size.intValue <= 0) fail("array size must be positive");
      g.arraySize = static_cast<int>(size.intValue);
      expect(TokenKind::RBracket, "after array size");
    }
    if (at(TokenKind::Assign)) {
      advance();
      if (at(TokenKind::LBrace)) {
        if (g.arraySize == 0) fail("brace initializer requires an array");
        advance();
        while (!at(TokenKind::RBrace)) {
          g.init.push_back(parseNumericLiteral());
          if (!at(TokenKind::RBrace)) expect(TokenKind::Comma, "in initializer");
        }
        advance();
        if (static_cast<int>(g.init.size()) > g.arraySize) {
          fail("too many initializer values for '" + g.name + "'");
        }
      } else {
        if (g.arraySize != 0) fail("array initializer must be brace-enclosed");
        g.init.push_back(parseNumericLiteral());
      }
    }
    expect(TokenKind::Semicolon, "after global declaration");
    program_.globals.push_back(std::move(g));
  }

  double parseNumericLiteral() {
    double sign = 1.0;
    if (at(TokenKind::Minus)) {
      advance();
      sign = -1.0;
    }
    if (at(TokenKind::IntLiteral)) {
      return sign * static_cast<double>(advance().intValue);
    }
    if (at(TokenKind::FloatLiteral)) {
      return sign * advance().floatValue;
    }
    fail("expected a numeric literal");
  }

  void parseFunctionRest(Type returnType, const std::string& name,
                         SourceLoc loc) {
    FunctionDecl fn;
    fn.name = name;
    fn.returnType = returnType;
    fn.loc = loc;
    expect(TokenKind::LParen, "after function name");
    if (at(TokenKind::KwVoid) && peek(1).kind == TokenKind::RParen) {
      advance();  // `(void)` parameter list
    }
    while (!at(TokenKind::RParen)) {
      Param p;
      p.loc = peek().loc;
      p.type = parseType();
      p.name = expect(TokenKind::Identifier, "as parameter name").text;
      if (at(TokenKind::LBracket)) {
        fail("array parameters are not supported; use a global array");
      }
      fn.params.push_back(std::move(p));
      if (!at(TokenKind::RParen)) expect(TokenKind::Comma, "in parameter list");
    }
    advance();  // ')'
    fn.body = parseBlock();
    fn.endLine = lastLine_;
    program_.functions.push_back(std::move(fn));
  }

  // -------------------------------------------------------------------
  // Statements.

  std::unique_ptr<Stmt> parseBlock() {
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::Block;
    block->loc = peek().loc;
    expect(TokenKind::LBrace, "to open block");
    while (!at(TokenKind::RBrace)) {
      block->body.push_back(parseStmt());
    }
    lastLine_ = peek().loc.line;
    advance();  // '}'
    return block;
  }

  std::unique_ptr<Stmt> parseStmt() {
    if (at(TokenKind::LBrace)) return parseBlock();
    if (atType()) return parseDecl();
    if (at(TokenKind::KwIf)) return parseIf();
    if (at(TokenKind::KwWhile)) return parseWhile();
    if (at(TokenKind::KwFor)) return parseFor();
    if (at(TokenKind::KwReturn)) return parseReturn();
    if (at(TokenKind::KwLoopBound)) {
      fail("__loopbound must be the first statement of a loop body");
    }
    auto stmt = parseAssignOrCall();
    expect(TokenKind::Semicolon, "after statement");
    return stmt;
  }

  std::unique_ptr<Stmt> parseDecl() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Decl;
    stmt->loc = peek().loc;
    stmt->declType = parseType();
    stmt->declName = expect(TokenKind::Identifier, "as variable name").text;
    if (at(TokenKind::LBracket)) {
      advance();
      const Token& size = expect(TokenKind::IntLiteral, "as array size");
      if (size.intValue <= 0) fail("array size must be positive");
      stmt->declArraySize = static_cast<int>(size.intValue);
      expect(TokenKind::RBracket, "after array size");
    }
    if (at(TokenKind::Assign)) {
      if (stmt->declArraySize != 0) {
        fail("local array initializers are not supported");
      }
      advance();
      stmt->value = parseExpr();
    }
    expect(TokenKind::Semicolon, "after declaration");
    return stmt;
  }

  std::unique_ptr<Stmt> parseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::If;
    stmt->loc = peek().loc;
    advance();  // 'if'
    expect(TokenKind::LParen, "after 'if'");
    stmt->cond = parseExpr();
    expect(TokenKind::RParen, "after condition");
    stmt->body.push_back(parseStmt());
    if (at(TokenKind::KwElse)) {
      advance();
      stmt->elseBody.push_back(parseStmt());
    }
    return stmt;
  }

  /// Parses a loop body block, extracting a leading `__loopbound(lo,hi);`
  /// annotation into (*lo, *hi).
  std::unique_ptr<Stmt> parseLoopBody(std::int64_t* lo, std::int64_t* hi) {
    if (!at(TokenKind::LBrace)) fail("loop body must be a brace-enclosed block");
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::Block;
    block->loc = peek().loc;
    advance();  // '{'
    if (at(TokenKind::KwLoopBound)) {
      advance();
      expect(TokenKind::LParen, "after '__loopbound'");
      const Token& loTok = expect(TokenKind::IntLiteral, "as loop lower bound");
      expect(TokenKind::Comma, "between loop bounds");
      const Token& hiTok = expect(TokenKind::IntLiteral, "as loop upper bound");
      expect(TokenKind::RParen, "after loop bounds");
      expect(TokenKind::Semicolon, "after __loopbound(...)");
      if (loTok.intValue < 0 || hiTok.intValue < loTok.intValue) {
        fail("invalid loop bounds: require 0 <= lo <= hi");
      }
      *lo = loTok.intValue;
      *hi = hiTok.intValue;
    }
    while (!at(TokenKind::RBrace)) {
      block->body.push_back(parseStmt());
    }
    lastLine_ = peek().loc.line;
    advance();  // '}'
    return block;
  }

  std::unique_ptr<Stmt> parseWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::While;
    stmt->loc = peek().loc;
    advance();  // 'while'
    expect(TokenKind::LParen, "after 'while'");
    stmt->cond = parseExpr();
    expect(TokenKind::RParen, "after condition");
    stmt->body.push_back(parseLoopBody(&stmt->loopLo, &stmt->loopHi));
    return stmt;
  }

  std::unique_ptr<Stmt> parseFor() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::For;
    stmt->loc = peek().loc;
    advance();  // 'for'
    expect(TokenKind::LParen, "after 'for'");
    if (!at(TokenKind::Semicolon)) stmt->init = parseAssignOrCall();
    expect(TokenKind::Semicolon, "after for-initializer");
    if (!at(TokenKind::Semicolon)) stmt->cond = parseExpr();
    expect(TokenKind::Semicolon, "after for-condition");
    if (!at(TokenKind::RParen)) stmt->step = parseAssignOrCall();
    expect(TokenKind::RParen, "after for-step");
    stmt->body.push_back(parseLoopBody(&stmt->loopLo, &stmt->loopHi));
    return stmt;
  }

  std::unique_ptr<Stmt> parseReturn() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Return;
    stmt->loc = peek().loc;
    advance();  // 'return'
    if (!at(TokenKind::Semicolon)) stmt->value = parseExpr();
    expect(TokenKind::Semicolon, "after return");
    return stmt;
  }

  /// `ident = expr`, `ident[expr] = expr`, or `ident(args)`.
  std::unique_ptr<Stmt> parseAssignOrCall() {
    const Token& nameTok = expect(TokenKind::Identifier, "at statement start");
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = nameTok.loc;

    if (at(TokenKind::LParen)) {
      stmt->kind = StmtKind::ExprStmt;
      stmt->value = parseCallRest(nameTok);
      return stmt;
    }

    stmt->kind = StmtKind::Assign;
    stmt->targetName = nameTok.text;
    if (at(TokenKind::LBracket)) {
      advance();
      stmt->targetIndex = parseExpr();
      expect(TokenKind::RBracket, "after array index");
    }
    expect(TokenKind::Assign, "in assignment");
    stmt->value = parseExpr();
    return stmt;
  }

  // -------------------------------------------------------------------
  // Expressions (precedence climbing).

  std::unique_ptr<Expr> parseExpr() { return parseBinary(0); }

  /// Returns the binary operator at the cursor and its precedence, or
  /// nullopt-equivalent (-1) when none applies.
  int binaryPrec(TokenKind kind, BinaryOp* op) const {
    switch (kind) {
      case TokenKind::PipePipe: *op = BinaryOp::LogOr; return 1;
      case TokenKind::AmpAmp: *op = BinaryOp::LogAnd; return 2;
      case TokenKind::Pipe: *op = BinaryOp::BitOr; return 3;
      case TokenKind::Caret: *op = BinaryOp::BitXor; return 4;
      case TokenKind::Amp: *op = BinaryOp::BitAnd; return 5;
      case TokenKind::Eq: *op = BinaryOp::Eq; return 6;
      case TokenKind::Ne: *op = BinaryOp::Ne; return 6;
      case TokenKind::Lt: *op = BinaryOp::Lt; return 7;
      case TokenKind::Le: *op = BinaryOp::Le; return 7;
      case TokenKind::Gt: *op = BinaryOp::Gt; return 7;
      case TokenKind::Ge: *op = BinaryOp::Ge; return 7;
      case TokenKind::Shl: *op = BinaryOp::Shl; return 8;
      case TokenKind::Shr: *op = BinaryOp::Shr; return 8;
      case TokenKind::Plus: *op = BinaryOp::Add; return 9;
      case TokenKind::Minus: *op = BinaryOp::Sub; return 9;
      case TokenKind::Star: *op = BinaryOp::Mul; return 10;
      case TokenKind::Slash: *op = BinaryOp::Div; return 10;
      case TokenKind::Percent: *op = BinaryOp::Rem; return 10;
      default: return -1;
    }
  }

  std::unique_ptr<Expr> parseBinary(int minPrec) {
    auto lhs = parseUnary();
    while (true) {
      BinaryOp op;
      const int prec = binaryPrec(peek().kind, &op);
      if (prec < 0 || prec < minPrec) return lhs;
      const SourceLoc loc = peek().loc;
      advance();
      auto rhs = parseBinary(prec + 1);  // all operators left-associative
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Binary;
      node->bop = op;
      node->loc = loc;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  std::unique_ptr<Expr> parseUnary() {
    const SourceLoc loc = peek().loc;
    UnaryOp op;
    if (at(TokenKind::Minus)) {
      op = UnaryOp::Neg;
    } else if (at(TokenKind::Bang)) {
      op = UnaryOp::LogNot;
    } else if (at(TokenKind::Tilde)) {
      op = UnaryOp::BitNot;
    } else {
      return parsePrimary();
    }
    advance();
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::Unary;
    node->uop = op;
    node->loc = loc;
    node->lhs = parseUnary();
    return node;
  }

  std::unique_ptr<Expr> parsePrimary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::IntLiteral: {
        advance();
        auto e = makeIntLit(tok.intValue, tok.loc);
        return e;
      }
      case TokenKind::FloatLiteral: {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::FloatLit;
        e->floatValue = tok.floatValue;
        e->type = Type::Float;
        e->loc = tok.loc;
        return e;
      }
      case TokenKind::LParen: {
        advance();
        auto e = parseExpr();
        expect(TokenKind::RParen, "after parenthesized expression");
        return e;
      }
      case TokenKind::Identifier: {
        advance();
        if (at(TokenKind::LParen)) return parseCallRest(tok);
        auto e = std::make_unique<Expr>();
        e->loc = tok.loc;
        e->name = tok.text;
        if (at(TokenKind::LBracket)) {
          advance();
          e->kind = ExprKind::Index;
          e->lhs = parseExpr();
          expect(TokenKind::RBracket, "after array index");
        } else {
          e->kind = ExprKind::VarRef;
        }
        return e;
      }
      default:
        fail(std::string("unexpected ") + tokenKindName(tok.kind) +
             " in expression");
    }
  }

  std::unique_ptr<Expr> parseCallRest(const Token& nameTok) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Call;
    e->name = nameTok.text;
    e->loc = nameTok.loc;
    expect(TokenKind::LParen, "after callee name");
    while (!at(TokenKind::RParen)) {
      e->args.push_back(parseExpr());
      if (!at(TokenKind::RParen)) expect(TokenKind::Comma, "in argument list");
    }
    advance();  // ')'
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program program_;
  int lastLine_ = 0;
};

}  // namespace

Program parse(std::string_view source) { return Parser(source).run(); }

}  // namespace cinderella::lang
