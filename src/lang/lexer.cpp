#include "cinderella/lang/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "cinderella/support/error.hpp"

namespace cinderella::lang {

const char* tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "end of input";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwLoopBound: return "'__loopbound'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Shl: return "'<<'";
    case TokenKind::Shr: return "'>>'";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::Eq: return "'=='";
    case TokenKind::Ne: return "'!='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> map = {
      {"int", TokenKind::KwInt},         {"float", TokenKind::KwFloat},
      {"void", TokenKind::KwVoid},       {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"return", TokenKind::KwReturn},
      {"__loopbound", TokenKind::KwLoopBound},
  };
  return map;
}

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < text_.size() ? text_[i] : '\0';
  }
  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc loc() const { return {line_, column_}; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

[[noreturn]] void fail(SourceLoc loc, const std::string& message) {
  throw ParseError("lex error at " + loc.str() + ": " + message);
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  auto push = [&](TokenKind kind, SourceLoc loc) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    tokens.push_back(std::move(t));
  };

  while (!cur.atEnd()) {
    const SourceLoc loc = cur.loc();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.atEnd() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      while (!(cur.peek() == '*' && cur.peek(1) == '/')) {
        if (cur.atEnd()) fail(loc, "unterminated block comment");
        cur.advance();
      }
      cur.advance();
      cur.advance();
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
             cur.peek() == '_') {
        word.push_back(cur.advance());
      }
      const auto it = keywords().find(word);
      Token t;
      t.kind = (it != keywords().end()) ? it->second : TokenKind::Identifier;
      t.loc = loc;
      t.text = std::move(word);
      tokens.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      bool isFloat = false;
      bool isHex = false;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        digits.push_back(cur.advance());
        digits.push_back(cur.advance());
        isHex = true;
        while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
          digits.push_back(cur.advance());
        }
        if (digits.size() == 2) fail(loc, "malformed hex literal");
      } else {
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          digits.push_back(cur.advance());
        }
        if (cur.peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
          isFloat = true;
          digits.push_back(cur.advance());
          while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
            digits.push_back(cur.advance());
          }
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          std::size_t look = 1;
          if (cur.peek(1) == '+' || cur.peek(1) == '-') look = 2;
          if (std::isdigit(static_cast<unsigned char>(cur.peek(look)))) {
            isFloat = true;
            digits.push_back(cur.advance());
            if (cur.peek() == '+' || cur.peek() == '-') {
              digits.push_back(cur.advance());
            }
            while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
              digits.push_back(cur.advance());
            }
          }
        }
      }
      Token t;
      t.loc = loc;
      if (isFloat) {
        t.kind = TokenKind::FloatLiteral;
        t.floatValue = std::strtod(digits.c_str(), nullptr);
      } else {
        t.kind = TokenKind::IntLiteral;
        t.intValue = std::strtoll(digits.c_str(), nullptr, isHex ? 16 : 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }

    cur.advance();
    switch (c) {
      case '(': push(TokenKind::LParen, loc); break;
      case ')': push(TokenKind::RParen, loc); break;
      case '{': push(TokenKind::LBrace, loc); break;
      case '}': push(TokenKind::RBrace, loc); break;
      case '[': push(TokenKind::LBracket, loc); break;
      case ']': push(TokenKind::RBracket, loc); break;
      case ',': push(TokenKind::Comma, loc); break;
      case ';': push(TokenKind::Semicolon, loc); break;
      case '+': push(TokenKind::Plus, loc); break;
      case '-': push(TokenKind::Minus, loc); break;
      case '*': push(TokenKind::Star, loc); break;
      case '/': push(TokenKind::Slash, loc); break;
      case '%': push(TokenKind::Percent, loc); break;
      case '^': push(TokenKind::Caret, loc); break;
      case '~': push(TokenKind::Tilde, loc); break;
      case '&':
        if (cur.peek() == '&') {
          cur.advance();
          push(TokenKind::AmpAmp, loc);
        } else {
          push(TokenKind::Amp, loc);
        }
        break;
      case '|':
        if (cur.peek() == '|') {
          cur.advance();
          push(TokenKind::PipePipe, loc);
        } else {
          push(TokenKind::Pipe, loc);
        }
        break;
      case '!':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Ne, loc);
        } else {
          push(TokenKind::Bang, loc);
        }
        break;
      case '=':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Eq, loc);
        } else {
          push(TokenKind::Assign, loc);
        }
        break;
      case '<':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Le, loc);
        } else if (cur.peek() == '<') {
          cur.advance();
          push(TokenKind::Shl, loc);
        } else {
          push(TokenKind::Lt, loc);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Ge, loc);
        } else if (cur.peek() == '>') {
          cur.advance();
          push(TokenKind::Shr, loc);
        } else {
          push(TokenKind::Gt, loc);
        }
        break;
      default:
        fail(loc, std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::End;
  end.loc = cur.loc();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cinderella::lang
