#include "cinderella/lang/loop_inference.hpp"

namespace cinderella::lang {

namespace {

/// The symbol written by a simple scalar assignment, or null.
const Symbol* assignedScalar(const Stmt& stmt) {
  if (stmt.kind != StmtKind::Assign || stmt.targetIndex != nullptr) {
    return nullptr;
  }
  return stmt.targetSymbol;
}

/// True when any statement in `body` (recursively) writes `symbol`.
bool bodyWrites(const std::vector<std::unique_ptr<Stmt>>& body,
                const Symbol* symbol);

bool stmtWrites(const Stmt& stmt, const Symbol* symbol) {
  switch (stmt.kind) {
    case StmtKind::Assign:
      return stmt.targetSymbol == symbol;
    case StmtKind::Block:
    case StmtKind::While:
      return bodyWrites(stmt.body, symbol);
    case StmtKind::If:
      return bodyWrites(stmt.body, symbol) ||
             bodyWrites(stmt.elseBody, symbol);
    case StmtKind::For:
      if (stmt.init && stmtWrites(*stmt.init, symbol)) return true;
      if (stmt.step && stmtWrites(*stmt.step, symbol)) return true;
      return bodyWrites(stmt.body, symbol);
    case StmtKind::Decl:
    case StmtKind::ExprStmt:
    case StmtKind::Return:
      // Calls cannot write a local scalar: MiniC has no pointers and
      // parameters are by value.  (Globals are excluded below.)
      return false;
  }
  return true;  // unreachable; be conservative
}

bool bodyWrites(const std::vector<std::unique_ptr<Stmt>>& body,
                const Symbol* symbol) {
  for (const auto& s : body) {
    if (stmtWrites(*s, symbol)) return true;
  }
  return false;
}

std::optional<std::int64_t> intLiteral(const Expr* e) {
  if (e != nullptr && e->kind == ExprKind::IntLit) return e->intValue;
  return std::nullopt;
}

const Symbol* scalarRef(const Expr* e) {
  if (e != nullptr && e->kind == ExprKind::VarRef) return e->symbol;
  return nullptr;
}

/// True when a `return` anywhere inside `body` could leave the loop
/// before the counted exit.
bool bodyReturns(const std::vector<std::unique_ptr<Stmt>>& body) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::Return:
        return true;
      case StmtKind::Block:
      case StmtKind::While:
        if (bodyReturns(s->body)) return true;
        break;
      case StmtKind::If:
        if (bodyReturns(s->body) || bodyReturns(s->elseBody)) return true;
        break;
      case StmtKind::For:
        if (bodyReturns(s->body)) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

}  // namespace

std::optional<std::pair<std::int64_t, std::int64_t>> inferTripCount(
    const Stmt& forStmt) {
  if (forStmt.kind != StmtKind::For) return std::nullopt;
  if (!forStmt.init || !forStmt.cond || !forStmt.step) return std::nullopt;

  // init: i = C0
  const Symbol* iv = assignedScalar(*forStmt.init);
  if (iv == nullptr || iv->type != Type::Int) return std::nullopt;
  // Globals could be rewritten by calls inside the body; require a local
  // or parameter induction variable.
  if (iv->storage == Storage::Global) return std::nullopt;
  const auto c0 = intLiteral(forStmt.init->value.get());
  if (!c0) return std::nullopt;

  // cond: i REL C1
  const Expr& cond = *forStmt.cond;
  if (cond.kind != ExprKind::Binary) return std::nullopt;
  if (scalarRef(cond.lhs.get()) != iv) return std::nullopt;
  const auto c1 = intLiteral(cond.rhs.get());
  if (!c1) return std::nullopt;

  // step: i = i + K  or  i = i - K
  if (assignedScalar(*forStmt.step) != iv) return std::nullopt;
  const Expr& stepExpr = *forStmt.step->value;
  if (stepExpr.kind != ExprKind::Binary) return std::nullopt;
  if (scalarRef(stepExpr.lhs.get()) != iv) return std::nullopt;
  const auto kOpt = intLiteral(stepExpr.rhs.get());
  if (!kOpt) return std::nullopt;
  std::int64_t k = *kOpt;
  if (stepExpr.bop == BinaryOp::Sub) {
    k = -k;
  } else if (stepExpr.bop != BinaryOp::Add) {
    return std::nullopt;
  }
  if (k == 0) return std::nullopt;

  // The body (and nothing else) must leave i alone.
  if (bodyWrites(forStmt.body, iv)) return std::nullopt;

  const std::int64_t lo = *c0;
  const std::int64_t hi = *c1;
  auto ceilDiv = [](std::int64_t num, std::int64_t den) {
    return (num + den - 1) / den;
  };

  std::int64_t trips = 0;
  switch (cond.bop) {
    case BinaryOp::Lt:
      if (k <= 0) return std::nullopt;
      trips = lo < hi ? ceilDiv(hi - lo, k) : 0;
      break;
    case BinaryOp::Le:
      if (k <= 0) return std::nullopt;
      trips = lo <= hi ? ceilDiv(hi - lo + 1, k) : 0;
      break;
    case BinaryOp::Gt:
      if (k >= 0) return std::nullopt;
      trips = lo > hi ? ceilDiv(lo - hi, -k) : 0;
      break;
    case BinaryOp::Ge:
      if (k >= 0) return std::nullopt;
      trips = lo >= hi ? ceilDiv(lo - hi + 1, -k) : 0;
      break;
    case BinaryOp::Ne:
      // i != C1 terminates exactly when the step lands on C1.
      if ((hi - lo) % k != 0) return std::nullopt;
      if ((hi - lo) / k < 0) return std::nullopt;
      trips = (hi - lo) / k;
      break;
    default:
      return std::nullopt;
  }

  // A return inside the body can leave the loop before the counted
  // exit: the count is then only an upper bound.
  if (bodyReturns(forStmt.body)) return std::make_pair<std::int64_t>(0, trips);
  return std::make_pair(trips, trips);
}

}  // namespace cinderella::lang
