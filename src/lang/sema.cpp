#include "cinderella/lang/sema.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cinderella/support/error.hpp"

namespace cinderella::lang {

namespace {

[[noreturn]] void fail(SourceLoc loc, const std::string& message) {
  throw ParseError("semantic error at " + loc.str() + ": " + message);
}

/// Wraps `expr` in a cast to `target` when its type differs.
std::unique_ptr<Expr> castTo(std::unique_ptr<Expr> expr, Type target) {
  if (expr->type == target) return expr;
  CIN_REQUIRE(expr->type != Type::Void && target != Type::Void);
  auto cast = std::make_unique<Expr>();
  cast->kind = ExprKind::Cast;
  cast->type = target;
  cast->loc = expr->loc;
  cast->lhs = std::move(expr);
  return cast;
}

class Analyzer {
 public:
  explicit Analyzer(Program& program) : program_(program) {}

  void run() {
    declareGlobals();
    // Duplicate-name check first, so calls may reference later functions.
    for (auto& fn : program_.functions) {
      if (program_.findFunction(fn.name) !=
          static_cast<int>(&fn - program_.functions.data())) {
        fail(fn.loc, "duplicate function '" + fn.name + "'");
      }
      if (globalScope_.contains(fn.name)) {
        fail(fn.loc, "function '" + fn.name + "' shadows a global variable");
      }
    }
    for (auto& fn : program_.functions) analyzeFunction(fn);
    rejectRecursion();
  }

 private:
  void declareGlobals() {
    for (auto& g : program_.globals) {
      if (globalScope_.contains(g.name)) {
        fail(g.loc, "duplicate global '" + g.name + "'");
      }
      auto sym = std::make_unique<Symbol>();
      sym->name = g.name;
      sym->type = g.type;
      sym->isArray = g.arraySize > 0;
      sym->arraySize = g.arraySize;
      sym->storage = Storage::Global;
      globalScope_[g.name] = sym.get();
      g.symbol = std::move(sym);
    }
  }

  void analyzeFunction(FunctionDecl& fn) {
    currentFn_ = &fn;
    scopes_.clear();
    scopes_.emplace_back();
    for (const auto& p : fn.params) {
      if (scopes_.back().contains(p.name)) {
        fail(p.loc, "duplicate parameter '" + p.name + "'");
      }
      auto sym = std::make_unique<Symbol>();
      sym->name = p.name;
      sym->type = p.type;
      sym->storage = Storage::Param;
      scopes_.back()[p.name] = sym.get();
      fn.symbols.push_back(std::move(sym));
    }
    analyzeStmt(*fn.body);
    currentFn_ = nullptr;
  }

  Symbol* lookup(const std::string& name, SourceLoc loc) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    const auto found = globalScope_.find(name);
    if (found != globalScope_.end()) return found->second;
    fail(loc, "unknown variable '" + name + "'");
  }

  void analyzeStmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (auto& s : stmt.body) analyzeStmt(*s);
        scopes_.pop_back();
        break;
      }
      case StmtKind::Decl: {
        if (scopes_.back().contains(stmt.declName)) {
          fail(stmt.loc, "duplicate local '" + stmt.declName + "'");
        }
        auto sym = std::make_unique<Symbol>();
        sym->name = stmt.declName;
        sym->type = stmt.declType;
        sym->isArray = stmt.declArraySize > 0;
        sym->arraySize = stmt.declArraySize;
        sym->storage = Storage::Local;
        stmt.declSymbol = sym.get();
        scopes_.back()[stmt.declName] = sym.get();
        currentFn_->symbols.push_back(std::move(sym));
        if (stmt.value) {
          analyzeExpr(*stmt.value);
          requireScalar(*stmt.value);
          stmt.value = castTo(std::move(stmt.value), stmt.declType);
        }
        break;
      }
      case StmtKind::Assign: {
        Symbol* target = lookup(stmt.targetName, stmt.loc);
        stmt.targetSymbol = target;
        if (stmt.targetIndex) {
          if (!target->isArray) {
            fail(stmt.loc, "'" + stmt.targetName + "' is not an array");
          }
          analyzeExpr(*stmt.targetIndex);
          if (stmt.targetIndex->type != Type::Int) {
            fail(stmt.targetIndex->loc, "array index must be int");
          }
        } else if (target->isArray) {
          fail(stmt.loc, "cannot assign to whole array '" + stmt.targetName +
                             "'");
        }
        analyzeExpr(*stmt.value);
        requireScalar(*stmt.value);
        stmt.value = castTo(std::move(stmt.value), target->type);
        break;
      }
      case StmtKind::ExprStmt: {
        analyzeExpr(*stmt.value);
        break;
      }
      case StmtKind::If: {
        analyzeExpr(*stmt.cond);
        requireCondition(*stmt.cond);
        for (auto& s : stmt.body) analyzeStmt(*s);
        for (auto& s : stmt.elseBody) analyzeStmt(*s);
        break;
      }
      case StmtKind::While: {
        analyzeExpr(*stmt.cond);
        requireCondition(*stmt.cond);
        for (auto& s : stmt.body) analyzeStmt(*s);
        break;
      }
      case StmtKind::For: {
        // For-clauses live in an implicit scope around the body.
        scopes_.emplace_back();
        if (stmt.init) analyzeStmt(*stmt.init);
        if (stmt.cond) {
          analyzeExpr(*stmt.cond);
          requireCondition(*stmt.cond);
        }
        if (stmt.step) analyzeStmt(*stmt.step);
        for (auto& s : stmt.body) analyzeStmt(*s);
        scopes_.pop_back();
        break;
      }
      case StmtKind::Return: {
        if (currentFn_->returnType == Type::Void) {
          if (stmt.value) fail(stmt.loc, "void function returns a value");
        } else {
          if (!stmt.value) fail(stmt.loc, "non-void function needs a value");
          analyzeExpr(*stmt.value);
          requireScalar(*stmt.value);
          stmt.value = castTo(std::move(stmt.value), currentFn_->returnType);
        }
        break;
      }
    }
  }

  void requireScalar(const Expr& expr) {
    if (expr.type == Type::Void) {
      fail(expr.loc, "void value used where a scalar is required");
    }
  }

  void requireCondition(const Expr& expr) {
    if (expr.type != Type::Int) {
      fail(expr.loc, "condition must be int-valued");
    }
  }

  void analyzeExpr(Expr& expr) {
    switch (expr.kind) {
      case ExprKind::IntLit:
        expr.type = Type::Int;
        break;
      case ExprKind::FloatLit:
        expr.type = Type::Float;
        break;
      case ExprKind::VarRef: {
        Symbol* sym = lookup(expr.name, expr.loc);
        if (sym->isArray) {
          fail(expr.loc, "array '" + expr.name + "' used without an index");
        }
        expr.symbol = sym;
        expr.type = sym->type;
        break;
      }
      case ExprKind::Index: {
        Symbol* sym = lookup(expr.name, expr.loc);
        if (!sym->isArray) {
          fail(expr.loc, "'" + expr.name + "' is not an array");
        }
        expr.symbol = sym;
        analyzeExpr(*expr.lhs);
        if (expr.lhs->type != Type::Int) {
          fail(expr.lhs->loc, "array index must be int");
        }
        expr.type = sym->type;
        break;
      }
      case ExprKind::Unary: {
        analyzeExpr(*expr.lhs);
        requireScalar(*expr.lhs);
        switch (expr.uop) {
          case UnaryOp::Neg:
            expr.type = expr.lhs->type;
            break;
          case UnaryOp::LogNot:
          case UnaryOp::BitNot:
            if (expr.lhs->type != Type::Int) {
              fail(expr.loc, "operator requires an int operand");
            }
            expr.type = Type::Int;
            break;
        }
        break;
      }
      case ExprKind::Binary: {
        analyzeExpr(*expr.lhs);
        analyzeExpr(*expr.rhs);
        requireScalar(*expr.lhs);
        requireScalar(*expr.rhs);
        const bool anyFloat =
            expr.lhs->type == Type::Float || expr.rhs->type == Type::Float;
        switch (expr.bop) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div: {
            const Type t = anyFloat ? Type::Float : Type::Int;
            expr.lhs = castTo(std::move(expr.lhs), t);
            expr.rhs = castTo(std::move(expr.rhs), t);
            expr.type = t;
            break;
          }
          case BinaryOp::Rem:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::Shl:
          case BinaryOp::Shr:
          case BinaryOp::LogAnd:
          case BinaryOp::LogOr:
            if (anyFloat) {
              fail(expr.loc, std::string("operator '") + binaryOpName(expr.bop) +
                                 "' requires int operands");
            }
            expr.type = Type::Int;
            break;
          case BinaryOp::Eq:
          case BinaryOp::Ne:
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge: {
            const Type t = anyFloat ? Type::Float : Type::Int;
            expr.lhs = castTo(std::move(expr.lhs), t);
            expr.rhs = castTo(std::move(expr.rhs), t);
            expr.type = Type::Int;
            break;
          }
        }
        break;
      }
      case ExprKind::Call: {
        const int callee = program_.findFunction(expr.name);
        if (callee < 0) fail(expr.loc, "unknown function '" + expr.name + "'");
        FunctionDecl& fn = program_.functions[static_cast<std::size_t>(callee)];
        if (expr.args.size() != fn.params.size()) {
          fail(expr.loc, "call to '" + expr.name + "' expects " +
                             std::to_string(fn.params.size()) + " arguments, got " +
                             std::to_string(expr.args.size()));
        }
        for (std::size_t i = 0; i < expr.args.size(); ++i) {
          analyzeExpr(*expr.args[i]);
          requireScalar(*expr.args[i]);
          expr.args[i] = castTo(std::move(expr.args[i]), fn.params[i].type);
        }
        expr.calleeIndex = callee;
        expr.type = fn.returnType;
        if (currentFn_) {
          callEdges_[currentFn_->name].insert(fn.name);
        }
        break;
      }
      case ExprKind::Cast:
        CIN_REQUIRE(false && "cast nodes are only created by sema");
        break;
    }
  }

  /// The paper's program model forbids recursion; reject any call-graph
  /// cycle (including self-calls).
  void rejectRecursion() {
    enum class Mark { White, Grey, Black };
    std::map<std::string, Mark> marks;
    std::vector<std::string> stack;

    auto dfs = [&](auto&& self, const std::string& fn) -> void {
      marks[fn] = Mark::Grey;
      stack.push_back(fn);
      for (const auto& callee : callEdges_[fn]) {
        const Mark m = marks.count(callee) ? marks[callee] : Mark::White;
        if (m == Mark::Grey) {
          std::string cycle;
          for (const auto& f : stack) cycle += f + " -> ";
          throw AnalysisError("recursion is not supported: " + cycle + callee);
        }
        if (m == Mark::White) self(self, callee);
      }
      marks[fn] = Mark::Black;
      stack.pop_back();
    };

    for (const auto& fn : program_.functions) {
      if (!marks.count(fn.name)) dfs(dfs, fn.name);
    }
  }

  Program& program_;
  FunctionDecl* currentFn_ = nullptr;
  std::map<std::string, Symbol*> globalScope_;
  std::vector<std::map<std::string, Symbol*>> scopes_;
  std::map<std::string, std::set<std::string>> callEdges_;
};

}  // namespace

void analyze(Program& program) { Analyzer(program).run(); }

}  // namespace cinderella::lang
