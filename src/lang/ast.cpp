#include "cinderella/lang/ast.hpp"

namespace cinderella::lang {

const char* typeName(Type type) {
  switch (type) {
    case Type::Int: return "int";
    case Type::Float: return "float";
    case Type::Void: return "void";
  }
  return "?";
}

const char* binaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
  }
  return "?";
}

std::unique_ptr<Expr> makeIntLit(std::int64_t value, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->intValue = value;
  e->type = Type::Int;
  e->loc = loc;
  return e;
}

int Program::findFunction(std::string_view name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace cinderella::lang
