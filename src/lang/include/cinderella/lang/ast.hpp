// Abstract syntax tree for MiniC.
//
// MiniC is the restricted-C dialect the analysis consumes, matching the
// paper's program model (Kligerman/Stoyenko, Puschner/Koza restrictions):
//   - scalar types `int` (64-bit) and `float` (IEEE double),
//   - one-dimensional arrays with compile-time sizes,
//   - functions with scalar parameters and scalar/void returns,
//   - structured control flow only (if/else, while, for),
//   - no pointers, no dynamic allocation, recursion rejected,
//   - every loop annotated `__loopbound(lo, hi)` as the first statement
//     of its body (the paper's mandatory annotation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cinderella/support/source_location.hpp"

namespace cinderella::lang {

enum class Type { Int, Float, Void };

[[nodiscard]] const char* typeName(Type type);

/// Where a resolved symbol lives.  Location indices are assigned by the
/// code generator.
enum class Storage { Global, Local, Param };

/// A resolved variable (scalar or array).  Owned by the enclosing
/// Program/FunctionDecl symbol tables; AST nodes reference it.
struct Symbol {
  std::string name;
  Type type = Type::Int;
  bool isArray = false;
  int arraySize = 0;  // elements; 0 for scalars
  Storage storage = Storage::Global;
  /// Code generator slot: global word offset, frame word offset, or
  /// parameter/register index, depending on `storage`.
  int location = -1;
};

// ---------------------------------------------------------------------------
// Expressions.

enum class UnaryOp { Neg, LogNot, BitNot };
enum class BinaryOp {
  Add, Sub, Mul, Div, Rem,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  LogAnd, LogOr,
};

[[nodiscard]] const char* binaryOpName(BinaryOp op);

enum class ExprKind {
  IntLit,    // intValue
  FloatLit,  // floatValue
  VarRef,    // name/symbol (scalar read)
  Index,     // name/symbol + index (array element read)
  Unary,     // uop, lhs
  Binary,    // bop, lhs, rhs
  Call,      // name, args; calleeIndex resolved by sema
  Cast,      // lhs cast to `type` (inserted by sema for int<->float)
};

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  SourceLoc loc;
  /// Result type; filled in by semantic analysis.
  Type type = Type::Int;

  std::int64_t intValue = 0;
  double floatValue = 0.0;
  std::string name;
  Symbol* symbol = nullptr;  // resolved VarRef/Index target

  UnaryOp uop = UnaryOp::Neg;
  BinaryOp bop = BinaryOp::Add;
  std::unique_ptr<Expr> lhs;  // unary operand / binary lhs / index expr / cast operand
  std::unique_ptr<Expr> rhs;  // binary rhs

  std::vector<std::unique_ptr<Expr>> args;  // call arguments
  int calleeIndex = -1;                     // resolved function index
};

[[nodiscard]] std::unique_ptr<Expr> makeIntLit(std::int64_t value,
                                               SourceLoc loc = {});

// ---------------------------------------------------------------------------
// Statements.

enum class StmtKind {
  Block,     // body
  Decl,      // local declaration: declSymbol (owned by function), optional init
  Assign,    // target (+ optional targetIndex) = value
  ExprStmt,  // expression evaluated for effect (calls)
  If,        // cond, body, elseBody
  While,     // cond, body, loop bounds
  For,       // init (Assign), cond, step (Assign), body, loop bounds
  Return,    // optional value
};

struct Stmt {
  StmtKind kind = StmtKind::Block;
  SourceLoc loc;

  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> elseBody;

  std::unique_ptr<Expr> cond;
  std::unique_ptr<Expr> value;  // assign rhs / return value / expr-stmt expr

  // Assignment target.
  std::string targetName;
  Symbol* targetSymbol = nullptr;
  std::unique_ptr<Expr> targetIndex;  // null for scalar targets

  // Local declaration.
  std::string declName;
  Type declType = Type::Int;
  int declArraySize = 0;
  Symbol* declSymbol = nullptr;

  // For-loop clauses.
  std::unique_ptr<Stmt> init;
  std::unique_ptr<Stmt> step;

  // Loop bound annotation (While/For); -1 = not provided.
  std::int64_t loopLo = -1;
  std::int64_t loopHi = -1;
};

// ---------------------------------------------------------------------------
// Top level.

struct Param {
  std::string name;
  Type type = Type::Int;
  SourceLoc loc;
};

struct GlobalDecl {
  std::string name;
  Type type = Type::Int;
  int arraySize = 0;          // 0 => scalar
  std::vector<double> init;   // literal initializer values (may be empty)
  SourceLoc loc;
  std::unique_ptr<Symbol> symbol;  // created by sema
};

struct FunctionDecl {
  std::string name;
  Type returnType = Type::Void;
  std::vector<Param> params;
  std::unique_ptr<Stmt> body;  // Block
  SourceLoc loc;
  int endLine = 0;  // last source line of the function body
  /// All symbols (params + locals) owned by this function; created by sema.
  std::vector<std::unique_ptr<Symbol>> symbols;
};

struct Program {
  std::string sourceText;
  std::vector<GlobalDecl> globals;
  std::vector<FunctionDecl> functions;

  [[nodiscard]] int findFunction(std::string_view name) const;
};

}  // namespace cinderella::lang
