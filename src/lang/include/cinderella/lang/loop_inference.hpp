// Automatic trip-count inference for counted loops — the paper's
// Section VII future work: "explore the possibility of using symbolic
// analysis techniques to automatically derive some of the functionality
// constraints".
//
// A `for` loop is inferable when it has the canonical counted shape
//     for (i = C0; i REL C1; i = i STEP K)
// with integer-literal C0/C1/K, REL in {<, <=, >, >=, !=}, STEP matching
// the direction, and the induction variable never written inside the
// body.  The inferred trip count is exact, so it doubles as both the
// lower and upper loop bound.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "cinderella/lang/ast.hpp"

namespace cinderella::lang {

/// Inferred [lo, hi] body-execution bounds of the counted loop
/// `forStmt`, or nullopt when the loop is not provably counted.  The
/// count is exact (lo == hi) unless the body contains a `return`, which
/// can leave the loop early (then lo == 0).  Requires a resolved AST
/// (run `analyze` first).
[[nodiscard]] std::optional<std::pair<std::int64_t, std::int64_t>>
inferTripCount(const Stmt& forStmt);

}  // namespace cinderella::lang
