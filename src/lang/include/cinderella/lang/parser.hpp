// Recursive-descent parser for MiniC.
#pragma once

#include <string_view>

#include "cinderella/lang/ast.hpp"

namespace cinderella::lang {

/// Parses a MiniC translation unit.  Throws ParseError on syntax errors.
/// The returned Program is unresolved; run `analyze` (sema.hpp) before
/// code generation.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace cinderella::lang
