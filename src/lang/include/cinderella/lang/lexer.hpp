// Hand-written lexer for MiniC.
#pragma once

#include <string_view>
#include <vector>

#include "cinderella/lang/token.hpp"

namespace cinderella::lang {

/// Tokenizes `source`; throws ParseError on malformed input.  The final
/// token always has kind End.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace cinderella::lang
