// Token definitions for MiniC, the annotated source language analysed by
// cinderella-ipet.  MiniC mirrors the restricted-C program model of the
// paper: no pointers, no dynamic allocation, no recursion, and every loop
// carries a `__loopbound(lo, hi)` annotation.
#pragma once

#include <cstdint>
#include <string>

#include "cinderella/support/source_location.hpp"

namespace cinderella::lang {

enum class TokenKind {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwInt, KwFloat, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
  KwLoopBound,  // __loopbound
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon,
  // Operators.
  Assign,        // =
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
  AmpAmp, PipePipe, Bang,
  Eq, Ne, Lt, Le, Gt, Ge,
};

[[nodiscard]] const char* tokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  SourceLoc loc;
  std::string text;        // identifier spelling
  std::int64_t intValue = 0;
  double floatValue = 0.0;
};

}  // namespace cinderella::lang
