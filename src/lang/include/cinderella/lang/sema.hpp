// Semantic analysis for MiniC: name resolution, type checking with
// implicit int<->float conversions, call resolution, and rejection of
// programs outside the paper's model (recursion, void misuse).
#pragma once

#include "cinderella/lang/ast.hpp"

namespace cinderella::lang {

/// Resolves and type-checks `program` in place.  Throws ParseError on
/// semantic errors and AnalysisError when the program violates the
/// analysable-program model (e.g. recursion).
void analyze(Program& program);

}  // namespace cinderella::lang
