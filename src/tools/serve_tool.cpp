#include "cinderella/tools/serve_tool.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <thread>

#include "cinderella/obs/log.hpp"
#include "cinderella/obs/trace.hpp"
#include "cinderella/serve/server.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/error.hpp"
#include "cinderella/support/fault_injector.hpp"

namespace cinderella::tools {

namespace {

/// Crash-dump plumbing for the flight recorder.  Plain globals because
/// signal handlers cannot capture state; only one daemon runs per
/// process.  The handler is deliberately best-effort: serialising the
/// ring allocates, which is not async-signal-safe, but the process is
/// dying anyway and a truncated dump beats no dump.
serve::Server* g_crashServer = nullptr;
std::string g_crashDumpPath;

extern "C" void crashDumpHandler(int sig) {
  if (g_crashServer != nullptr && !g_crashDumpPath.empty()) {
    const std::string dump = g_crashServer->flightRecorder().json();
    const int fd =
        ::open(g_crashDumpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      (void)!::write(fd, dump.data(), dump.size());
      (void)!::write(fd, "\n", 1);
      ::close(fd);
    }
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void installCrashHandlers(serve::Server* server, const std::string& path) {
  g_crashServer = server;
  g_crashDumpPath = path;
  std::signal(SIGSEGV, crashDumpHandler);
  std::signal(SIGABRT, crashDumpHandler);
}

void uninstallCrashHandlers() {
  std::signal(SIGSEGV, SIG_DFL);
  std::signal(SIGABRT, SIG_DFL);
  g_crashServer = nullptr;
  g_crashDumpPath.clear();
}

/// Self-pipe for SIGTERM/SIGINT: the handler only write()s one byte
/// (async-signal-safe); a watcher thread reads the pipe and starts the
/// graceful drain from normal thread context, where condition variables
/// and allocation are legal.
int g_signalPipeWrite = -1;

extern "C" void drainSignalHandler(int) {
  if (g_signalPipeWrite >= 0) {
    const char byte = 'd';
    (void)!::write(g_signalPipeWrite, &byte, 1);
  }
}

constexpr const char* kServeUsage = R"(usage: cinderella-serve [options]

Runs the IPET analyzer as a persistent daemon on 127.0.0.1, speaking
newline-delimited JSON (one request object per line, one response per
line; see DESIGN.md "Serve protocol").  Repeat submissions of an
identical constraint system are answered from a content-addressed solve
cache without solving; near-identical ones warm-start from a cached
basis.

options:
  --port <N>                listen port (default 0 = pick an ephemeral
                            port; the chosen port is announced on stdout)
  --jobs <N>                solver pool worker threads (default 0 = one
                            per hardware thread)
  --max-inflight <N>        solves allowed to run concurrently before
                            overload admission clamps deadlines
                            (default 0 = twice the pool size)
  --overload-deadline-ms <N> deadline clamp for requests admitted under
                            overload (default 50); they degrade to sound
                            relaxation/structural bounds instead of
                            queueing
  --cache-entries <N>       solve-cache capacity per store (default 1024;
                            0 disables caching)
  --cache-snapshot <file>   restore the cache from this snapshot (plus its
                            <file>.journal of admissions) on start and
                            write it back on shutdown; writes are atomic
                            and CRC-framed, so a kill -9 at any byte
                            offset recovers to a consistent prefix
  --drain-timeout-ms <N>    budget for in-flight analyses to finish once a
                            drain begins — SIGTERM, SIGINT, or an
                            {"op":"drain"} frame (default 30000); a clean
                            drain exits 5, expiry exits 6
  --max-request-bytes <N>   per-connection frame quota; longer lines get a
                            typed "toolarge" error and are discarded
                            (default 16777216)
  --max-queued <N>          analyses allowed to wait beyond --max-inflight
                            before arrivals are rejected with a typed
                            "overloaded" error (default -1 = unbounded)
  --max-request-memory-mb <N> per-request solve memory ceiling; oversize
                            solves degrade to sound structural bounds
                            (default 0 = none)
  --fault-rate <R>          chaos testing: inject snapshot write/fsync
                            faults with probability R in [0, 1]
                            (default 0 = off)
  --fault-seed <N>          seed for the deterministic fault stream
                            (default 1)
  --trace-out <file>        write a Chrome trace-event JSON timeline of
                            every request served, on shutdown
  --log-out <file>          structured NDJSON request log ("-" = stderr);
                            one {"event":"request",...} object per line
  --log-level <level>       debug, info (default), warn, or error
  --slow-ms <N>             requests slower than N ms additionally log a
                            "slow-request" record embedding the request's
                            span tree (default 0 = off)
  --flight-recorder <N>     flight-recorder ring capacity — the last N
                            requests, always on (default 256)
  --flight-out <file>       dump the flight recorder here on shutdown and
                            (best-effort) on SIGSEGV/SIGABRT
  --help                    show this message

Stop the daemon by sending {"op":"shutdown"} on any connection, e.g.:
  printf '{"op":"shutdown"}\n' | nc 127.0.0.1 <port>
Drain it gracefully (finish in-flight work, write the snapshot, exit 5)
with SIGTERM, SIGINT, or:
  printf '{"op":"drain"}\n' | nc 127.0.0.1 <port>
Readiness: {"op":"health"} on the socket, or GET /healthz on the same
port (200 while ready, 503 once draining).
)";

bool parseSizeArg(const char* text, long long lo, long long hi,
                  long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < lo || v > hi) return false;
  *out = v;
  return true;
}

}  // namespace

bool parseServeArgs(int argc, const char* const* argv,
                    ServeToolOptions* options, std::ostream& err) {
  auto needValue = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err << "cinderella-serve: " << flag << " needs an argument\n"
          << kServeUsage;
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long value = 0;
    if (arg == "--help" || arg == "-h") {
      err << kServeUsage;
      return false;
    } else if (arg == "--port") {
      const char* v = needValue(i, "--port");
      if (!v || !parseSizeArg(v, 0, 65535, &value)) {
        err << "cinderella-serve: --port needs an integer in [0, 65535]\n";
        return false;
      }
      options->port = static_cast<int>(value);
    } else if (arg == "--jobs") {
      const char* v = needValue(i, "--jobs");
      if (!v || !parseSizeArg(v, 0, 1024, &value)) {
        err << "cinderella-serve: --jobs needs an integer in [0, 1024]\n";
        return false;
      }
      options->poolThreads = static_cast<int>(value);
    } else if (arg == "--max-inflight") {
      const char* v = needValue(i, "--max-inflight");
      if (!v || !parseSizeArg(v, 0, 65536, &value)) {
        err << "cinderella-serve: --max-inflight needs an integer in "
               "[0, 65536]\n";
        return false;
      }
      options->maxInflight = static_cast<int>(value);
    } else if (arg == "--overload-deadline-ms") {
      const char* v = needValue(i, "--overload-deadline-ms");
      if (!v || !parseSizeArg(v, 1, 86'400'000, &value)) {
        err << "cinderella-serve: --overload-deadline-ms needs an integer "
               "in [1, 86400000]\n";
        return false;
      }
      options->overloadDeadlineMs = value;
    } else if (arg == "--cache-entries") {
      const char* v = needValue(i, "--cache-entries");
      if (!v || !parseSizeArg(v, 0, 1 << 24, &value)) {
        err << "cinderella-serve: --cache-entries needs an integer in "
               "[0, 16777216]\n";
        return false;
      }
      options->cacheEntries = static_cast<std::size_t>(value);
    } else if (arg == "--cache-snapshot") {
      const char* v = needValue(i, "--cache-snapshot");
      if (!v) return false;
      options->snapshotPath = v;
    } else if (arg == "--drain-timeout-ms") {
      const char* v = needValue(i, "--drain-timeout-ms");
      if (!v || !parseSizeArg(v, 0, 86'400'000, &value)) {
        err << "cinderella-serve: --drain-timeout-ms needs an integer in "
               "[0, 86400000]\n";
        return false;
      }
      options->drainTimeoutMs = value;
    } else if (arg == "--max-request-bytes") {
      const char* v = needValue(i, "--max-request-bytes");
      if (!v || !parseSizeArg(v, 1024, 1LL << 32, &value)) {
        err << "cinderella-serve: --max-request-bytes needs an integer in "
               "[1024, 4294967296]\n";
        return false;
      }
      options->maxRequestBytes = static_cast<std::size_t>(value);
    } else if (arg == "--max-queued") {
      const char* v = needValue(i, "--max-queued");
      if (!v || !parseSizeArg(v, -1, 1 << 20, &value)) {
        err << "cinderella-serve: --max-queued needs an integer in "
               "[-1, 1048576]\n";
        return false;
      }
      options->maxQueuedRequests = static_cast<int>(value);
    } else if (arg == "--max-request-memory-mb") {
      const char* v = needValue(i, "--max-request-memory-mb");
      if (!v || !parseSizeArg(v, 0, 1 << 20, &value)) {
        err << "cinderella-serve: --max-request-memory-mb needs an integer "
               "in [0, 1048576]\n";
        return false;
      }
      options->maxRequestMemoryMb = static_cast<std::size_t>(value);
    } else if (arg == "--fault-rate") {
      const char* v = needValue(i, "--fault-rate");
      char* end = nullptr;
      const double rate = v != nullptr ? std::strtod(v, &end) : 0.0;
      if (!v || end == v || *end != '\0' || rate < 0.0 || rate > 1.0) {
        err << "cinderella-serve: --fault-rate needs a number in [0, 1]\n";
        return false;
      }
      options->faultRate = rate;
    } else if (arg == "--fault-seed") {
      const char* v = needValue(i, "--fault-seed");
      if (!v || !parseSizeArg(v, 0, (1LL << 62), &value)) {
        err << "cinderella-serve: --fault-seed needs a non-negative "
               "integer\n";
        return false;
      }
      options->faultSeed = static_cast<std::uint64_t>(value);
    } else if (arg == "--trace-out") {
      const char* v = needValue(i, "--trace-out");
      if (!v) return false;
      options->traceOut = v;
    } else if (arg == "--log-out") {
      const char* v = needValue(i, "--log-out");
      if (!v) return false;
      options->logOut = v;
    } else if (arg == "--log-level") {
      const char* v = needValue(i, "--log-level");
      if (!v) return false;
      if (!obs::parseLogLevel(v)) {
        err << "cinderella-serve: --log-level needs debug, info, warn or "
               "error\n";
        return false;
      }
      options->logLevel = v;
    } else if (arg == "--slow-ms") {
      const char* v = needValue(i, "--slow-ms");
      if (!v || !parseSizeArg(v, 0, 86'400'000, &value)) {
        err << "cinderella-serve: --slow-ms needs an integer in "
               "[0, 86400000]\n";
        return false;
      }
      options->slowMs = value;
    } else if (arg == "--flight-recorder") {
      const char* v = needValue(i, "--flight-recorder");
      if (!v || !parseSizeArg(v, 8, 1 << 20, &value)) {
        err << "cinderella-serve: --flight-recorder needs an integer in "
               "[8, 1048576]\n";
        return false;
      }
      options->flightEntries = static_cast<std::size_t>(value);
    } else if (arg == "--flight-out") {
      const char* v = needValue(i, "--flight-out");
      if (!v) return false;
      options->flightOut = v;
    } else {
      err << "cinderella-serve: unknown option '" << arg << "'\n"
          << kServeUsage;
      return false;
    }
  }
  return true;
}

int runServeTool(const ServeToolOptions& options, std::ostream& out,
                 std::ostream& err) {
  try {
    std::unique_ptr<obs::Tracer> tracer;
    if (!options.traceOut.empty()) tracer = std::make_unique<obs::Tracer>();

    // The structured log sink: a file, or stderr for "-".  Opened before
    // the server so a bad path fails the start, not the first request.
    std::unique_ptr<std::ofstream> logFile;
    std::unique_ptr<obs::Logger> logger;
    if (!options.logOut.empty()) {
      std::ostream* sink = &std::cerr;
      if (options.logOut != "-") {
        logFile = std::make_unique<std::ofstream>(options.logOut,
                                                  std::ios::app);
        if (!*logFile) {
          err << "cinderella-serve: cannot open log file '" << options.logOut
              << "'\n";
          return 1;
        }
        sink = logFile.get();
      }
      const auto level = obs::parseLogLevel(options.logLevel);
      logger = std::make_unique<obs::Logger>(
          sink, level.value_or(obs::LogLevel::Info));
    }

    // Chaos mode: arm the deterministic fault injector so snapshot
    // writes and fsyncs fail with the configured probability — the
    // serve-chaos CI job proves recovery still converges under it.
    std::unique_ptr<support::FaultInjector> faultInjector;
    if (options.faultRate > 0.0) {
      support::FaultPlan plan;
      plan.seed = options.faultSeed;
      plan.snapshotWriteRate = options.faultRate;
      plan.snapshotFsyncRate = options.faultRate;
      faultInjector = std::make_unique<support::FaultInjector>(plan);
    }
    support::ScopedFaultInjector scopedFaults(faultInjector.get());

    serve::ServerOptions serverOptions;
    serverOptions.port = options.port;
    serverOptions.poolThreads = options.poolThreads;
    serverOptions.maxInflight = options.maxInflight;
    serverOptions.overloadDeadlineMs = options.overloadDeadlineMs;
    serverOptions.cacheEntries = options.cacheEntries;
    serverOptions.snapshotPath = options.snapshotPath;
    if (!options.snapshotPath.empty()) {
      serverOptions.journalPath = options.snapshotPath + ".journal";
    }
    serverOptions.maxRequestBytes = options.maxRequestBytes;
    serverOptions.maxQueuedRequests = options.maxQueuedRequests;
    serverOptions.maxRequestMemoryBytes = options.maxRequestMemoryMb << 20;
    serverOptions.benchmarkResolver = suite::benchmarkResolver();
    serverOptions.tracer = tracer.get();
    serverOptions.logger = logger.get();
    serverOptions.slowMillis = options.slowMs;
    serverOptions.flightRecorderEntries = options.flightEntries;
    serverOptions.flightDumpPath = options.flightOut;

    serve::Server server(std::move(serverOptions));
    if (!options.flightOut.empty()) {
      installCrashHandlers(&server, options.flightOut);
    }
    std::string startError;
    if (!server.start(&startError)) {
      uninstallCrashHandlers();
      err << "cinderella-serve: " << startError << "\n";
      return 1;
    }
    if (!server.snapshotLoadError().empty()) {
      err << "cinderella-serve: snapshot damage recovered: "
          << server.snapshotLoadError() << "\n";
    }
    if (!options.snapshotPath.empty()) {
      const ipet::SnapshotRestoreReport& restore = server.restoreReport();
      out << "cinderella-serve: cache restore: " << restore.bounds
          << " bounds, " << restore.bases << " bases, " << restore.formulas
          << " formulas, " << restore.journalRecords << " journaled\n";
    }
    out << "cinderella-serve: listening on 127.0.0.1:" << server.port()
        << "\n";
    out.flush();

    // SIGTERM/SIGINT start a graceful drain via the self-pipe watcher.
    int signalPipe[2] = {-1, -1};
    if (::pipe(signalPipe) != 0) {
      uninstallCrashHandlers();
      err << "cinderella-serve: pipe: " << strerror(errno) << "\n";
      return 4;
    }
    g_signalPipeWrite = signalPipe[1];
    std::signal(SIGTERM, drainSignalHandler);
    std::signal(SIGINT, drainSignalHandler);
    std::thread signalWatcher([&server, readFd = signalPipe[0]] {
      char byte = 0;
      while (true) {
        const ssize_t n = ::read(readFd, &byte, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0 || byte == 'q') return;
        server.beginDrain();
      }
    });

    server.wait();
    int exitCode = 0;
    bool drainTimedOut = false;
    if (server.draining() && !server.shutdownRequested()) {
      // Graceful drain: the listener is already closed and new analyses
      // are being rejected; give in-flight work its budget to finish.
      const bool idle = server.awaitIdle(options.drainTimeoutMs);
      drainTimedOut = !idle;
      exitCode = idle ? 5 : 6;
    }

    // Retire the watcher before stop() so a late signal cannot race the
    // server teardown; any drain it would have started is moot now.
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    g_signalPipeWrite = -1;
    {
      const char quit = 'q';
      (void)!::write(signalPipe[1], &quit, 1);
    }
    signalWatcher.join();
    ::close(signalPipe[0]);
    ::close(signalPipe[1]);

    server.stop();
    uninstallCrashHandlers();
    if (drainTimedOut) {
      err << "cinderella-serve: drain timeout of " << options.drainTimeoutMs
          << " ms expired with work still in flight\n";
    } else if (exitCode == 5) {
      out << "cinderella-serve: drained cleanly\n";
    }

    const serve::ServeCounters counters = server.counters();
    const ipet::SolveCacheStats cache = server.service().cache().stats();
    const std::int64_t lookups = cache.boundHits + cache.boundMisses;
    out << "cinderella-serve: served " << counters.requests << " request(s) on "
        << counters.connections << " connection(s); cache " << cache.boundHits
        << "/" << lookups << " bound hit(s), " << counters.overloadAdmissions
        << " overload admission(s)\n";

    if (tracer != nullptr) {
      std::ofstream traceFile(options.traceOut);
      if (!traceFile) {
        err << "cinderella-serve: cannot write trace to '" << options.traceOut
            << "'\n";
        return 1;
      }
      tracer->writeChromeTrace(traceFile);
    }
    return exitCode;
  } catch (const Error& e) {
    err << "cinderella-serve: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "cinderella-serve: internal error: " << e.what() << "\n";
    return 4;
  }
}

}  // namespace cinderella::tools
