#include "cinderella/tools/serve_tool.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>

#include "cinderella/obs/trace.hpp"
#include "cinderella/serve/server.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/error.hpp"

namespace cinderella::tools {

namespace {

constexpr const char* kServeUsage = R"(usage: cinderella-serve [options]

Runs the IPET analyzer as a persistent daemon on 127.0.0.1, speaking
newline-delimited JSON (one request object per line, one response per
line; see DESIGN.md "Serve protocol").  Repeat submissions of an
identical constraint system are answered from a content-addressed solve
cache without solving; near-identical ones warm-start from a cached
basis.

options:
  --port <N>                listen port (default 0 = pick an ephemeral
                            port; the chosen port is announced on stdout)
  --jobs <N>                solver pool worker threads (default 0 = one
                            per hardware thread)
  --max-inflight <N>        solves allowed to run concurrently before
                            overload admission clamps deadlines
                            (default 0 = twice the pool size)
  --overload-deadline-ms <N> deadline clamp for requests admitted under
                            overload (default 50); they degrade to sound
                            relaxation/structural bounds instead of
                            queueing
  --cache-entries <N>       solve-cache capacity per store (default 1024;
                            0 disables caching)
  --cache-snapshot <file>   restore the cache from this snapshot on start
                            (if present) and write it back on shutdown
  --trace-out <file>        write a Chrome trace-event JSON timeline of
                            every request served, on shutdown
  --help                    show this message

Stop the daemon by sending {"op":"shutdown"} on any connection, e.g.:
  printf '{"op":"shutdown"}\n' | nc 127.0.0.1 <port>
)";

bool parseSizeArg(const char* text, long long lo, long long hi,
                  long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < lo || v > hi) return false;
  *out = v;
  return true;
}

}  // namespace

bool parseServeArgs(int argc, const char* const* argv,
                    ServeToolOptions* options, std::ostream& err) {
  auto needValue = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err << "cinderella-serve: " << flag << " needs an argument\n"
          << kServeUsage;
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long value = 0;
    if (arg == "--help" || arg == "-h") {
      err << kServeUsage;
      return false;
    } else if (arg == "--port") {
      const char* v = needValue(i, "--port");
      if (!v || !parseSizeArg(v, 0, 65535, &value)) {
        err << "cinderella-serve: --port needs an integer in [0, 65535]\n";
        return false;
      }
      options->port = static_cast<int>(value);
    } else if (arg == "--jobs") {
      const char* v = needValue(i, "--jobs");
      if (!v || !parseSizeArg(v, 0, 1024, &value)) {
        err << "cinderella-serve: --jobs needs an integer in [0, 1024]\n";
        return false;
      }
      options->poolThreads = static_cast<int>(value);
    } else if (arg == "--max-inflight") {
      const char* v = needValue(i, "--max-inflight");
      if (!v || !parseSizeArg(v, 0, 65536, &value)) {
        err << "cinderella-serve: --max-inflight needs an integer in "
               "[0, 65536]\n";
        return false;
      }
      options->maxInflight = static_cast<int>(value);
    } else if (arg == "--overload-deadline-ms") {
      const char* v = needValue(i, "--overload-deadline-ms");
      if (!v || !parseSizeArg(v, 1, 86'400'000, &value)) {
        err << "cinderella-serve: --overload-deadline-ms needs an integer "
               "in [1, 86400000]\n";
        return false;
      }
      options->overloadDeadlineMs = value;
    } else if (arg == "--cache-entries") {
      const char* v = needValue(i, "--cache-entries");
      if (!v || !parseSizeArg(v, 0, 1 << 24, &value)) {
        err << "cinderella-serve: --cache-entries needs an integer in "
               "[0, 16777216]\n";
        return false;
      }
      options->cacheEntries = static_cast<std::size_t>(value);
    } else if (arg == "--cache-snapshot") {
      const char* v = needValue(i, "--cache-snapshot");
      if (!v) return false;
      options->snapshotPath = v;
    } else if (arg == "--trace-out") {
      const char* v = needValue(i, "--trace-out");
      if (!v) return false;
      options->traceOut = v;
    } else {
      err << "cinderella-serve: unknown option '" << arg << "'\n"
          << kServeUsage;
      return false;
    }
  }
  return true;
}

int runServeTool(const ServeToolOptions& options, std::ostream& out,
                 std::ostream& err) {
  try {
    std::unique_ptr<obs::Tracer> tracer;
    if (!options.traceOut.empty()) tracer = std::make_unique<obs::Tracer>();

    serve::ServerOptions serverOptions;
    serverOptions.port = options.port;
    serverOptions.poolThreads = options.poolThreads;
    serverOptions.maxInflight = options.maxInflight;
    serverOptions.overloadDeadlineMs = options.overloadDeadlineMs;
    serverOptions.cacheEntries = options.cacheEntries;
    serverOptions.snapshotPath = options.snapshotPath;
    serverOptions.benchmarkResolver = suite::benchmarkResolver();
    serverOptions.tracer = tracer.get();

    serve::Server server(std::move(serverOptions));
    std::string startError;
    if (!server.start(&startError)) {
      err << "cinderella-serve: " << startError << "\n";
      return 1;
    }
    if (!server.snapshotLoadError().empty()) {
      err << "cinderella-serve: snapshot ignored: "
          << server.snapshotLoadError() << "\n";
    }
    out << "cinderella-serve: listening on 127.0.0.1:" << server.port()
        << "\n";
    out.flush();

    server.wait();
    server.stop();

    const serve::ServeCounters counters = server.counters();
    const ipet::SolveCacheStats cache = server.service().cache().stats();
    const std::int64_t lookups = cache.boundHits + cache.boundMisses;
    out << "cinderella-serve: served " << counters.requests << " request(s) on "
        << counters.connections << " connection(s); cache " << cache.boundHits
        << "/" << lookups << " bound hit(s), " << counters.overloadAdmissions
        << " overload admission(s)\n";

    if (tracer != nullptr) {
      std::ofstream traceFile(options.traceOut);
      if (!traceFile) {
        err << "cinderella-serve: cannot write trace to '" << options.traceOut
            << "'\n";
        return 1;
      }
      tracer->writeChromeTrace(traceFile);
    }
    return 0;
  } catch (const Error& e) {
    err << "cinderella-serve: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "cinderella-serve: internal error: " << e.what() << "\n";
    return 4;
  }
}

}  // namespace cinderella::tools
