#include "cinderella/tools/tool.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "cinderella/cfg/dot.hpp"
#include "cinderella/codegen/codegen.hpp"
#include "cinderella/explicitpath/enumerator.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/ipet/annotate.hpp"
#include "cinderella/obs/metrics.hpp"
#include "cinderella/obs/report.hpp"
#include "cinderella/obs/trace.hpp"
#include "cinderella/sim/simulator.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/error.hpp"
#include "cinderella/support/text.hpp"

namespace cinderella::tools {

namespace {

constexpr const char* kUsage = R"(usage: cinderella [options] [source.mc]

Bounds the running time of an annotated MiniC program using implicit
path enumeration (Li & Malik, DAC'95).

input (one of):
  <source.mc>              analyse a MiniC source file
  --benchmark <name>       analyse a built-in Table-I benchmark
                           (check_data, fft, piksrt, des, line, circle,
                            jpeg_fdct_islow, jpeg_idct_islow, recon,
                            fullsearch, whetstone, dhry, matgen)

options:
  --root <function>        root function to analyse (default: main)
  --constraint "<text>"    add a functionality constraint (repeatable)
  --constraints-file <f>   read constraints, one per line ('#' comments)
  --param <N=lo..hi>       declare symbolic parameter @N over [lo, hi]
                           (repeatable; N=v declares the single value v).
                           Constraints may then reference @N, e.g.
                           --constraint "main@L4 <= @N"; the analysis
                           returns a closed-form piecewise-linear bound
                           in N plus a sweep over the declared range,
                           each point bit-identical to a direct solve
  --annotate               print the annotated source (paper Fig. 5)
  --structural             print the derived structural constraints
  --cache <mode>           allmiss (default), firstiter (Section-IV
                           refinement) or ccg (cache conflict graph)
  --first-iter-split       alias for --cache firstiter
  --jobs <N>               solve the per-constraint-set ILPs on N worker
                           threads (default 1; 0 = all hardware threads);
                           the bound is identical for every N
  --deadline-ms <N>        solve deadline in milliseconds; sets still
                           unsolved at expiry degrade to sound fallback
                           bounds (LP relaxation or structural interval)
                           and the run is flagged as timed out
  --degraded <mode>        allow (default) accepts degraded per-set
                           bounds; forbid exits with code 3 when any
                           constraint set is not solved exactly
  --no-warm-start          disable the incremental solve pipeline
                           (constraint-set deduplication, domination
                           pruning, and basis warm starts); the bound is
                           identical either way — this is for A/B
                           performance measurement
  --no-presolve            disable the presolve/postsolve reduction
                           engine (singleton substitution, bound
                           propagation, fixed-variable elimination,
                           redundant-row removal); the bound is
                           identical either way — this is for A/B
                           performance measurement
  --cache-entries <N>      enable the content-addressed solve cache with
                           N entries per store (default 0 = off; pair
                           with --cache-snapshot to reuse it across runs)
  --cache-snapshot <file>  restore the solve cache from this snapshot
                           before analysing (if present) and write it
                           back afterwards; repeat runs of an unchanged
                           input then skip the solve entirely
  --cache-policy <p>       readwrite (default), readonly (use but never
                           update the snapshot) or bypass
  --report                 print per-block costs and extreme counts
  --lp-dump                print the worst-case ILPs in CPLEX LP format
  --dot                    print the CFGs in Graphviz dot format
  --explicit               also run explicit path enumeration and compare
  --simulate               run extreme-case data sets on the simulator
                           and verify the bound encloses them
                           (built-in benchmarks only)

observability:
  --trace-out <file>       write a Chrome trace-event JSON timeline of
                           the run (load in chrome://tracing or Perfetto)
  --report-json <file>     write a structured solve report: the bound,
                           aggregate stats, one record per constraint
                           set, and solver metrics
  --verbose-solve          print a per-constraint-set solve table

  --help                   show this message

exit codes:
  0  success
  1  usage, input or analysis error
  2  --simulate measured a run outside the estimated bound (unsound)
  3  --degraded forbid and at least one set was not solved exactly
  4  internal error (unexpected exception; please report)
)";

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses a --param spec "name=lo..hi" or "name=value".
bool parseParamSpec(const std::string& spec, ipet::ParamDecl* decl) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string name = spec.substr(0, eq);
  for (std::size_t k = 0; k < name.size(); ++k) {
    const auto c = static_cast<unsigned char>(name[k]);
    const bool ok =
        std::isalpha(c) != 0 || c == '_' || (k > 0 && std::isdigit(c) != 0);
    if (!ok) return false;
  }
  const std::string range = spec.substr(eq + 1);
  const std::size_t dots = range.find("..");
  const std::string loText =
      dots == std::string::npos ? range : range.substr(0, dots);
  const std::string hiText =
      dots == std::string::npos ? range : range.substr(dots + 2);
  if (loText.empty() || hiText.empty()) return false;
  char* end = nullptr;
  const std::int64_t lo = std::strtoll(loText.c_str(), &end, 10);
  if (end != loText.c_str() + loText.size()) return false;
  end = nullptr;
  const std::int64_t hi = std::strtoll(hiText.c_str(), &end, 10);
  if (end != hiText.c_str() + hiText.size()) return false;
  if (lo > hi) return false;
  decl->name = name;
  decl->lo = lo;
  decl->hi = hi;
  return true;
}

std::string ratStr(const ipet::Rat& r) {
  std::string s = std::to_string(r.num);
  if (r.den != 1) s += "/" + std::to_string(r.den);
  return s;
}

std::string affineStr(const ipet::AffineForm& form,
                      const std::vector<ipet::ParamDecl>& params) {
  std::string s = ratStr(form.constant);
  for (std::size_t i = 0; i < form.coeff.size() && i < params.size(); ++i) {
    ipet::Rat c = form.coeff[i];
    if (c.num == 0) continue;
    s += c.num > 0 ? " + " : " - ";
    if (c.num < 0) c.num = -c.num;
    if (!(c.num == 1 && c.den == 1)) s += ratStr(c) + "*";
    s += params[i].name;
  }
  return s;
}

void printParametric(std::ostream& out, const ipet::AnalysisResult& result) {
  const ipet::WcetFormula& formula = *result.formula;
  out << "parametric formula (" << formula.pieces.size() << " piece(s)"
      << (result.cacheHit ? ", served from the formula cache" : "") << "):\n";
  for (const ipet::FormulaPiece& piece : formula.pieces) {
    out << "  ";
    for (std::size_t i = 0; i < formula.params.size(); ++i) {
      if (i != 0) out << ", ";
      out << formula.params[i].name << " in [" << piece.region.lo[i] << ", "
          << piece.region.hi[i] << "]";
    }
    out << ": worst = " << affineStr(piece.worst, formula.params)
        << "; best = " << affineStr(piece.best, formula.params) << "\n";
  }
  if (!formula.params.empty()) {
    // Sweep over the declared box: every axis is sampled with an
    // endpoint-inclusive stride and the cartesian grid printed row by
    // row.  The row budget is split evenly across axes, so two or three
    // parameters still render a digestible table instead of an
    // exponential dump.
    constexpr std::int64_t kMaxRows = 32;
    const std::size_t numParams = formula.params.size();
    const auto axisBudget = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::floor(std::pow(
               static_cast<double>(kMaxRows),
               1.0 / static_cast<double>(numParams)))));
    std::vector<std::vector<std::int64_t>> axes;
    bool sampled = false;
    for (const ipet::ParamDecl& p : formula.params) {
      const std::int64_t count = p.hi - p.lo + 1;
      const std::int64_t stride =
          count > axisBudget ? (count + axisBudget - 1) / axisBudget : 1;
      if (stride > 1) sampled = true;
      std::vector<std::int64_t> points;
      for (std::int64_t v = p.lo;; v += stride) {
        points.push_back(v);
        if (v > p.hi - stride) break;
      }
      if (points.back() != p.hi) points.push_back(p.hi);
      axes.push_back(std::move(points));
    }
    out << "sweep ";
    for (std::size_t i = 0; i < numParams; ++i) {
      if (i != 0) out << ", ";
      out << formula.params[i].name << " = " << formula.params[i].lo << ".."
          << formula.params[i].hi;
    }
    out << (sampled ? " (sampled)" : "") << ":\n";
    std::vector<std::size_t> index(numParams, 0);
    std::vector<std::int64_t> point(numParams, 0);
    bool done = false;
    while (!done) {
      for (std::size_t i = 0; i < numParams; ++i) point[i] = axes[i][index[i]];
      const ipet::Interval bound = formula.evaluate(point);
      out << "  ";
      for (std::size_t i = 0; i < numParams; ++i) {
        if (i != 0) out << ", ";
        out << formula.params[i].name << " = " << point[i];
      }
      out << ": " << intervalStr(bound.lo, bound.hi) << " cycles\n";
      std::size_t axis = numParams;
      while (axis-- > 0) {
        if (++index[axis] < axes[axis].size()) break;
        index[axis] = 0;
        if (axis == 0) done = true;
      }
    }
  }
  out << "parametric digest: " << result.fullDigest.hex()
      << " (serve \"evaluate\" op key)\n";
}

}  // namespace

bool parseArgs(int argc, const char* const* argv, ToolOptions* options,
               std::ostream& err) {
  auto needValue = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err << "cinderella: " << flag << " needs an argument\n" << kUsage;
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      err << kUsage;
      return false;
    } else if (arg == "--benchmark") {
      const char* v = needValue(i, "--benchmark");
      if (!v) return false;
      options->benchmark = v;
    } else if (arg == "--root") {
      const char* v = needValue(i, "--root");
      if (!v) return false;
      options->root = v;
    } else if (arg == "--constraint") {
      const char* v = needValue(i, "--constraint");
      if (!v) return false;
      options->constraints.push_back(v);
    } else if (arg == "--constraints-file") {
      const char* v = needValue(i, "--constraints-file");
      if (!v) return false;
      for (const auto& line : splitLines(readFile(v))) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#') continue;
        options->constraints.push_back(line);
      }
    } else if (arg == "--param") {
      const char* v = needValue(i, "--param");
      if (!v) return false;
      ipet::ParamDecl decl;
      if (!parseParamSpec(v, &decl)) {
        err << "cinderella: --param needs <name>=<lo>..<hi> (or "
               "<name>=<value>) with an identifier name and integer "
               "lo <= hi\n";
        return false;
      }
      options->params.push_back(std::move(decl));
    } else if (arg == "--annotate") {
      options->annotate = true;
    } else if (arg == "--structural") {
      options->dumpStructural = true;
    } else if (arg == "--first-iter-split") {
      options->cacheMode = ipet::CacheMode::FirstIterationSplit;
    } else if (arg == "--cache") {
      const char* v = needValue(i, "--cache");
      if (!v) return false;
      const auto mode = ipet::parseCacheMode(v);
      if (!mode) {
        err << "cinderella: unknown --cache mode '" << v
            << "' (must be allmiss, firstiter or ccg)\n";
        return false;
      }
      options->cacheMode = *mode;
    } else if (arg == "--jobs") {
      const char* v = needValue(i, "--jobs");
      if (!v) return false;
      char* end = nullptr;
      const long jobs = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || jobs < 0 || jobs > 1024) {
        err << "cinderella: --jobs needs an integer in [0, 1024] "
               "(0 = all hardware threads)\n";
        return false;
      }
      options->jobs = static_cast<int>(jobs);
    } else if (arg == "--deadline-ms") {
      const char* v = needValue(i, "--deadline-ms");
      if (!v) return false;
      char* end = nullptr;
      const long long ms = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || ms < 1 || ms > 86'400'000) {
        err << "cinderella: --deadline-ms needs an integer in "
               "[1, 86400000] (milliseconds)\n";
        return false;
      }
      options->deadlineMs = ms;
    } else if (arg == "--degraded") {
      const char* v = needValue(i, "--degraded");
      if (!v) return false;
      const std::string mode = v;
      if (mode == "forbid") {
        options->forbidDegraded = true;
      } else if (mode == "allow") {
        options->forbidDegraded = false;
      } else {
        err << "cinderella: --degraded must be 'allow' or 'forbid'\n";
        return false;
      }
    } else if (arg == "--no-warm-start") {
      options->warmStart = false;
    } else if (arg == "--no-presolve") {
      options->presolve = false;
    } else if (arg == "--cache-entries") {
      const char* v = needValue(i, "--cache-entries");
      if (!v) return false;
      char* end = nullptr;
      const long long entries = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || entries < 0 || entries > (1 << 24)) {
        err << "cinderella: --cache-entries needs an integer in "
               "[0, 16777216]\n";
        return false;
      }
      options->cacheEntries = static_cast<std::size_t>(entries);
    } else if (arg == "--cache-snapshot") {
      const char* v = needValue(i, "--cache-snapshot");
      if (!v) return false;
      options->cacheSnapshot = v;
      if (options->cacheEntries == 0) options->cacheEntries = 1024;
    } else if (arg == "--cache-policy") {
      const char* v = needValue(i, "--cache-policy");
      if (!v) return false;
      const auto policy = ipet::parseCachePolicy(v);
      if (!policy) {
        err << "cinderella: unknown --cache-policy '" << v
            << "' (must be readwrite, readonly or bypass)\n";
        return false;
      }
      options->cachePolicy = *policy;
    } else if (arg == "--report") {
      options->report = true;
    } else if (arg == "--lp-dump") {
      options->lpDump = true;
    } else if (arg == "--dot") {
      options->dot = true;
    } else if (arg == "--explicit") {
      options->compareExplicit = true;
    } else if (arg == "--simulate") {
      options->simulate = true;
    } else if (arg == "--trace-out") {
      const char* v = needValue(i, "--trace-out");
      if (!v) return false;
      options->traceOut = v;
    } else if (arg == "--report-json") {
      const char* v = needValue(i, "--report-json");
      if (!v) return false;
      options->reportJson = v;
    } else if (arg == "--verbose-solve") {
      options->verboseSolve = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "cinderella: unknown option '" << arg << "'\n" << kUsage;
      return false;
    } else if (options->sourcePath.empty()) {
      options->sourcePath = arg;
    } else {
      err << "cinderella: multiple source files given\n" << kUsage;
      return false;
    }
  }

  if (options->sourcePath.empty() && options->benchmark.empty()) {
    err << "cinderella: no input (give a source file or --benchmark)\n"
        << kUsage;
    return false;
  }
  if (!options->sourcePath.empty() && !options->benchmark.empty()) {
    err << "cinderella: give either a source file or --benchmark, not both\n";
    return false;
  }
  if (options->simulate && options->benchmark.empty()) {
    err << "cinderella: --simulate needs --benchmark (data sets)\n";
    return false;
  }
  if (!options->params.empty() &&
      (options->simulate || options->compareExplicit || options->lpDump)) {
    err << "cinderella: --param cannot be combined with --simulate, "
           "--explicit or --lp-dump (those need concrete parameter "
           "values)\n";
    return false;
  }
  return true;
}

int runTool(const ToolOptions& options, std::ostream& out,
            std::ostream& err) {
  try {
    std::string source;
    std::string root = options.root;
    std::vector<suite::Constraint> constraints;
    const suite::Benchmark* bench = nullptr;

    if (!options.benchmark.empty()) {
      bench = &suite::benchmarkByName(options.benchmark);
      source = bench->source;
      if (root.empty()) root = bench->rootFunction;
      constraints = bench->constraints;
    } else {
      source = readFile(options.sourcePath);
      if (root.empty()) root = "main";
    }
    for (const auto& text : options.constraints) {
      constraints.push_back({text, ""});
    }

    // Observability: a tracer only when --trace-out asked for one (a null
    // tracer keeps every Span disabled), and a metrics registry installed
    // as the process-wide sink only while --report-json needs a snapshot.
    std::unique_ptr<obs::Tracer> tracer;
    if (!options.traceOut.empty()) tracer = std::make_unique<obs::Tracer>();
    obs::MetricsRegistry metrics;
    std::optional<obs::ScopedMetricsSink> scopedSink;
    if (!options.reportJson.empty()) scopedSink.emplace(&metrics);

    obs::Span frontendSpan(tracer.get(), "frontend", "ipet");
    const codegen::CompileResult compiled = codegen::compileSource(source);
    frontendSpan.end();

    obs::Span setupSpan(tracer.get(), "analyzer-setup", "ipet");
    ipet::AnalyzerOptions aopt;
    aopt.cacheMode = options.cacheMode;
    ipet::Analyzer analyzer(compiled, root, aopt);
    for (const auto& c : constraints) {
      analyzer.addConstraint(c.text, c.scope);
    }
    setupSpan.end();

    if (options.annotate) {
      out << ipet::annotateSource(analyzer, source) << "\n";
    }
    if (options.dumpStructural) {
      for (int f = 0; f < compiled.module.numFunctions(); ++f) {
        out << analyzer.structuralConstraintsStr(f);
      }
      out << "\n";
    }

    if (options.dot) {
      out << cfg::moduleToDot(compiled.module) << "\n";
    }
    if (options.lpDump) {
      out << analyzer.exportWorstCaseIlp() << "\n";
    }

    // The estimate itself goes through the same AnalysisService the
    // daemon uses — the CLI is a thin adapter over the unified
    // AnalysisRequest/AnalysisResult API, plus the local inspection
    // commands (annotate/structural/dot/lp-dump) handled above.
    ipet::AnalysisServiceOptions serviceOptions;
    serviceOptions.cache.capacity = options.cacheEntries;
    ipet::AnalysisService service(serviceOptions);
    if (!options.cacheSnapshot.empty()) {
      std::ifstream probe(options.cacheSnapshot);
      std::string loadError;
      if (probe && !service.cache().load(options.cacheSnapshot, &loadError)) {
        err << "cinderella: cache snapshot ignored: " << loadError << "\n";
      }
    }

    ipet::AnalysisRequest request;
    request.label =
        !options.benchmark.empty() ? options.benchmark : options.sourcePath;
    request.cachePolicy = options.cachePolicy;
    request.control.threads = options.jobs;
    request.control.warmStart = options.warmStart;
    request.control.presolve = options.presolve;
    request.control.tracer = tracer.get();
    if (options.deadlineMs > 0) {
      request.control.deadline = std::chrono::milliseconds(options.deadlineMs);
    }
    request.parameters = options.params;
    const ipet::AnalysisResult result =
        options.params.empty()
            ? service.analyzeWith(analyzer, request)
            : service.analyzeParametricWith(analyzer, request);
    const ipet::Estimate& estimate = result.estimate;

    if (!options.cacheSnapshot.empty() &&
        options.cachePolicy == ipet::CachePolicy::ReadWrite) {
      std::string saveError;
      if (!service.cache().save(options.cacheSnapshot, &saveError)) {
        err << "cinderella: cache snapshot not written: " << saveError << "\n";
      }
    }

    if (tracer != nullptr) {
      std::ofstream traceFile(options.traceOut);
      if (!traceFile) {
        throw Error("cannot write trace to '" + options.traceOut + "'");
      }
      tracer->writeChromeTrace(traceFile);
    }
    if (!options.reportJson.empty()) {
      scopedSink.reset();  // stop collecting; the snapshot is final
      const std::string program =
          !options.benchmark.empty() ? options.benchmark : options.sourcePath;
      std::ofstream reportFile(options.reportJson);
      if (!reportFile) {
        throw Error("cannot write report to '" + options.reportJson + "'");
      }
      obs::writeReportJson(program, estimate, &metrics, reportFile);
    }

    if (options.verboseSolve) {
      out << obs::formatSolveTable(estimate) << "\n";
    }
    if (options.report) {
      out << ipet::formatEstimateReport(analyzer, estimate) << "\n";
    }
    if (result.formula) {
      printParametric(out, result);
      out << "estimated bound over the declared box: "
          << intervalStr(estimate.bound.lo, estimate.bound.hi) << " cycles\n";
    } else {
      out << "estimated bound: "
          << intervalStr(estimate.bound.lo, estimate.bound.hi)
          << " cycles\n";
      if (result.cacheHit) {
        // A hit restores only the verified bound and the set count; the
        // per-solve statistics belong to the original (cold) run.
        out << "solve cache: hit (" << estimate.stats.constraintSets
            << " constraint set(s), solved in " << result.solveMicros
            << " us originally)\n";
      } else {
        out << "constraint sets: " << estimate.stats.constraintSets << " ("
            << estimate.stats.prunedNullSets << " null, pruned); ILP solves: "
            << estimate.stats.ilpSolves
            << "; LP calls: " << estimate.stats.lpCalls
            << "; first relaxation integral: "
            << (estimate.stats.allFirstRelaxationsIntegral ? "yes" : "no")
            << "\n";
        if (estimate.stats.presolveRowsRemoved +
                estimate.stats.presolveColsFixed +
                estimate.stats.presolveSubstitutions !=
            0) {
          out << "presolve: " << estimate.stats.presolveRowsRemoved
              << " row(s) removed, " << estimate.stats.presolveColsFixed
              << " var(s) fixed, " << estimate.stats.presolveSubstitutions
              << " substituted across " << estimate.stats.lpCalls
              << " LP call(s)\n";
        }
      }
    }

    const int degradedSets = estimate.stats.relaxedSets +
                             estimate.stats.structuralSets +
                             estimate.stats.failedSets;
    if (degradedSets != 0 || estimate.timedOut) {
      out << "degraded: " << estimate.stats.relaxedSets << " relaxed, "
          << estimate.stats.structuralSets << " structural, "
          << estimate.stats.failedSets << " failed set(s)"
          << (estimate.timedOut ? "; deadline expired" : "") << "; bound is "
          << (estimate.sound() ? "sound but possibly loose"
                               : "NOT guaranteed sound")
          << "\n";
      if (options.forbidDegraded) {
        err << "cinderella: degraded result rejected (--degraded forbid)\n";
        return 3;
      }
    }

    if (options.compareExplicit) {
      explicitpath::EnumOptions eo;
      const explicitpath::EnumResult ex =
          explicitpath::enumeratePaths(compiled, root, eo);
      out << "explicit enumeration: " << ex.pathsExplored << " paths"
          << (ex.complete ? "" : " (CAPPED, bounds partial)") << ", bound "
          << intervalStr(ex.best, ex.worst) << "\n";
      if (ex.complete) {
        out << "implicit == explicit: "
            << ((estimate.bound.lo == ex.best && estimate.bound.hi == ex.worst)
                    ? "yes"
                    : "NO")
            << "\n";
      }
    }

    if (options.simulate && bench != nullptr) {
      sim::Simulator simulator(compiled.module);
      const int fn = *compiled.module.findFunction(root);
      sim::SimOptions worstRun;
      worstRun.patches = bench->worstData;
      const sim::SimResult worst = simulator.run(fn, {}, worstRun);
      sim::SimOptions bestRun;
      bestRun.patches = bench->bestData;
      (void)simulator.run(fn, {}, bestRun);
      bestRun.coldCache = false;
      const sim::SimResult best = simulator.run(fn, {}, bestRun);
      out << "simulated: worst-case data " << withThousands(worst.cycles)
          << " cycles (cold cache), best-case data "
          << withThousands(best.cycles) << " cycles (warm cache)\n";
      const bool enclosed = estimate.bound.lo <= best.cycles &&
                            worst.cycles <= estimate.bound.hi;
      out << "bound encloses simulation: " << (enclosed ? "yes" : "NO")
          << "\n";
      if (!enclosed) return 2;
    }
    return 0;
  } catch (const Error& e) {
    err << "cinderella: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Anything that is not a cinderella::Error escaping this far is a
    // bug in the tool itself, not a problem with the user's input.
    err << "cinderella: internal error: " << e.what() << "\n";
    return 4;
  } catch (...) {
    err << "cinderella: internal error: unknown exception\n";
    return 4;
  }
}

}  // namespace cinderella::tools
