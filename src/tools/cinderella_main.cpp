#include <iostream>

#include "cinderella/tools/tool.hpp"

int main(int argc, char** argv) {
  cinderella::tools::ToolOptions options;
  if (!cinderella::tools::parseArgs(argc, argv, &options, std::cerr)) {
    return 1;
  }
  return cinderella::tools::runTool(options, std::cout, std::cerr);
}
