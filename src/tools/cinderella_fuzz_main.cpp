// cinderella-fuzz — differential fuzzing campaign driver.
//
// Generates random MiniC programs, cross-checks the IPET analyzer
// against explicit enumeration and the cycle-accurate simulator (see
// fuzz/oracle.hpp), delta-debugs any failure to a minimal reproducer,
// and emits a one-line JSON summary on stdout.  Exit code 0 means the
// campaign found no discrepancy; 1 means at least one; 2 means bad
// usage.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "cinderella/fuzz/fuzzer.hpp"

namespace {

constexpr const char* kUsage = R"(usage: cinderella-fuzz [options]

Differential fuzzing of the IPET analyzer: random annotated MiniC
programs are checked for exact agreement with explicit path enumeration
and for soundness against the cycle-accurate simulator, across cache
modes and solver thread counts.  Failing programs are minimized with a
delta-debugging shrinker.

options:
  --runs <N>            programs to generate (default 100)
  --seed <S>            campaign seed; run i uses a seed derived from
                        (S, i), so failures replay from the summary line
                        (default 1)
  --max-loop-bound <K>  maximum exact trip count of generated loops
                        (default 4)
  --sim-trials <N>      simulator inputs tried per program (default 5)
  --max-failures <N>    stop after N distinct failures (default 5)
  --out-dir <dir>       write failing programs as seed-<s>.mc plus
                        shrunk reproducers seed-<s>.shrunk.mc and the
                        JSON summary as summary.json
  --constraints         also generate redundant functionality
                        constraints (exercises DNF + null-set pruning)
  --fault-rate <R>      degradation drill: re-run each estimate under a
                        deterministic fault injector firing at rate R in
                        [0,1] at every site (LP pivots, pool tasks,
                        deadline clock); the degraded interval must stay
                        sound (default 0 = off)
  --fault-seed <S>      seed of the fault injector (default 1)
  --no-shrink           keep failing programs unminimized
  --no-explicit         skip the explicit-enumeration oracle
  --no-presolve         skip the presolve A/B oracle (presolve-on vs
                        presolve-off bounds and verdicts per cache mode)
  --no-parametric       skip the parametric-equivalence oracle (formula
                        evaluation vs direct solves at sampled points)
  --help                show this message

The JSON summary line on stdout reports runs, failures, throughput
(programs/sec) and the discrepancy kind of each failure.
)";

struct CliOptions {
  cinderella::fuzz::FuzzOptions fuzz;
  std::string outDir;
  bool helpRequested = false;
};

bool parseUint64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parseInt(const char* text, int lo, int hi, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < lo || v > hi) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parseRate(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v >= 0.0) || !(v <= 1.0)) return false;
  *out = v;
  return true;
}

int parseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cinderella-fuzz: " << arg << " needs an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      options->helpRequested = true;
      return 0;
    } else if (arg == "--runs") {
      const char* v = value();
      if (!v || !parseInt(v, 1, 1'000'000, &options->fuzz.runs)) return 2;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v || !parseUint64(v, &options->fuzz.seed)) return 2;
    } else if (arg == "--max-loop-bound") {
      const char* v = value();
      if (!v ||
          !parseInt(v, 1, 64, &options->fuzz.generator.maxLoopBound)) {
        return 2;
      }
    } else if (arg == "--sim-trials") {
      const char* v = value();
      if (!v || !parseInt(v, 0, 1000, &options->fuzz.oracle.simTrials)) {
        return 2;
      }
    } else if (arg == "--max-failures") {
      const char* v = value();
      if (!v || !parseInt(v, 1, 10'000, &options->fuzz.maxFailures)) return 2;
    } else if (arg == "--out-dir") {
      const char* v = value();
      if (!v) return 2;
      options->outDir = v;
    } else if (arg == "--fault-rate") {
      const char* v = value();
      if (!v || !parseRate(v, &options->fuzz.oracle.faultRate)) {
        std::cerr << "cinderella-fuzz: --fault-rate needs a value in [0,1]\n";
        return 2;
      }
    } else if (arg == "--fault-seed") {
      const char* v = value();
      if (!v || !parseUint64(v, &options->fuzz.oracle.faultSeed)) return 2;
    } else if (arg == "--constraints") {
      options->fuzz.generator.emitConstraints = true;
    } else if (arg == "--no-shrink") {
      options->fuzz.shrinkFailures = false;
    } else if (arg == "--no-explicit") {
      options->fuzz.oracle.compareExplicit = false;
    } else if (arg == "--no-presolve") {
      options->fuzz.oracle.checkPresolve = false;
    } else if (arg == "--no-parametric") {
      options->fuzz.oracle.checkParametric = false;
    } else {
      std::cerr << "cinderella-fuzz: unknown option '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }
  return 0;
}

void writeFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cinderella-fuzz: cannot write " << path << "\n";
    return;
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (const int rc = parseArgs(argc, argv, &options); rc != 0) return rc;
  if (options.helpRequested) return 0;

  namespace fuzz = cinderella::fuzz;
  std::vector<fuzz::FuzzFailure> failures;
  const auto start = std::chrono::steady_clock::now();
  const fuzz::FuzzSummary summary =
      fuzz::runFuzz(options.fuzz, &failures, &std::cerr);
  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::string json = fuzz::fuzzSummaryJson(summary, failures,
                                                 wallSeconds);
  std::cout << json << "\n";

  if (!options.outDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.outDir, ec);
    if (ec) {
      std::cerr << "cinderella-fuzz: cannot create " << options.outDir
                << ": " << ec.message() << "\n";
      return 1;
    }
    for (const fuzz::FuzzFailure& failure : failures) {
      const std::string stem = "seed-" + std::to_string(failure.programSeed);
      writeFile(std::filesystem::path(options.outDir) / (stem + ".mc"),
                fuzz::reproducerFile(failure, /*shrunk=*/false));
      if (options.fuzz.shrinkFailures) {
        writeFile(
            std::filesystem::path(options.outDir) / (stem + ".shrunk.mc"),
            fuzz::reproducerFile(failure, /*shrunk=*/true));
      }
    }
    writeFile(std::filesystem::path(options.outDir) / "summary.json", json);
  }

  return summary.failures == 0 ? 0 : 1;
}
