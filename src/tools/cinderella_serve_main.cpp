#include <iostream>

#include "cinderella/tools/serve_tool.hpp"

int main(int argc, char** argv) {
  cinderella::tools::ServeToolOptions options;
  if (!cinderella::tools::parseServeArgs(argc, argv, &options, std::cerr)) {
    return 1;
  }
  return cinderella::tools::runServeTool(options, std::cout, std::cerr);
}
