// The `cinderella` command-line tool, mirroring the workflow of the
// paper's Section V: read the program, derive structural constraints,
// ask for loop bounds (here: annotations or a constraint file), print
// the annotated source, estimate the bound, and re-estimate as more
// functionality constraints are supplied.
//
// The driver logic lives in a library function so it can be unit-tested
// without spawning processes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cinderella/ipet/analysis.hpp"
#include "cinderella/ipet/analyzer.hpp"

namespace cinderella::tools {

struct ToolOptions {
  /// Path to a MiniC source file; empty when `benchmark` is used.
  std::string sourcePath;
  /// Name of a built-in Table-I benchmark to analyse instead of a file.
  std::string benchmark;
  /// Root function (default: "main", or the benchmark's root).
  std::string root;
  /// Extra functionality constraints, one per entry (from --constraint
  /// and from --constraints-file lines).
  std::vector<std::string> constraints;
  /// Declared symbolic parameters (--param N=lo..hi, repeatable).  When
  /// non-empty the analysis runs in parametric mode: `@name` references
  /// in the constraints stay symbolic and the tool prints the piecewise
  /// closed-form bound plus a sweep over the declared range.
  std::vector<ipet::ParamDecl> params;
  /// Print the annotated source listing (paper Fig. 5).
  bool annotate = false;
  /// Print the structural constraints (paper Figs 2-4 content).
  bool dumpStructural = false;
  /// Cache treatment (--cache allmiss|firstiter|ccg); unknown spellings
  /// are rejected by parseArgs via ipet::parseCacheMode.
  ipet::CacheMode cacheMode = ipet::CacheMode::AllMiss;
  /// Worker threads for the per-constraint-set solves (--jobs N);
  /// 0 = one per hardware thread.
  int jobs = 1;
  /// Solve deadline in milliseconds (--deadline-ms); 0 = none.  Sets
  /// still unsolved at expiry degrade to sound fallback bounds instead
  /// of aborting the run.
  std::int64_t deadlineMs = 0;
  /// --degraded forbid: exit with code 3 when any constraint set fell
  /// back to a non-exact (relaxed/structural/failed) bound.
  bool forbidDegraded = false;
  /// --no-warm-start clears this: run the non-incremental pipeline (no
  /// set deduplication, no domination pruning, no basis reuse) for A/B
  /// performance comparison.  The bound is identical either way.
  bool warmStart = true;
  /// --no-presolve clears this: solve every LP without the
  /// presolve/postsolve reduction engine for A/B performance
  /// comparison.  The bound is identical either way.
  bool presolve = true;
  /// Print the per-block cost/count report after estimation.
  bool report = false;
  /// Print the worst-case ILPs in CPLEX LP format.
  bool lpDump = false;
  /// Print the module control-flow graphs in Graphviz dot format.
  bool dot = false;
  /// Also run the explicit-enumeration baseline and compare.
  bool compareExplicit = false;
  /// Also run the program on the simulator and check enclosure
  /// (requires a benchmark, which carries its data sets).
  bool simulate = false;
  /// Solve-cache entries (--cache-entries N); 0 disables the cache.
  /// Without --cache-snapshot a one-shot run never revisits a system,
  /// so the default keeps the cache off.
  std::size_t cacheEntries = 0;
  /// Solve-cache snapshot file (--cache-snapshot): restored before the
  /// run when present, written back afterwards.  Implies a cache.
  std::string cacheSnapshot;
  /// Cache policy (--cache-policy readwrite|readonly|bypass).
  ipet::CachePolicy cachePolicy = ipet::CachePolicy::ReadWrite;
  /// Write a Chrome trace-event JSON file of the whole run (--trace-out).
  std::string traceOut;
  /// Write a structured solve report as JSON (--report-json).
  std::string reportJson;
  /// Print the per-constraint-set solve table (--verbose-solve).
  bool verboseSolve = false;
};

/// Parses argv into options.  Returns false (after printing usage to
/// `err`) when the command line is invalid or --help was requested.
bool parseArgs(int argc, const char* const* argv, ToolOptions* options,
               std::ostream& err);

/// Runs the tool; returns the process exit code.
int runTool(const ToolOptions& options, std::ostream& out, std::ostream& err);

}  // namespace cinderella::tools
