// The `cinderella-serve` daemon driver: parse flags, stand up a
// serve::Server wired to the built-in benchmark suite, announce the
// port, and block until a client asks for shutdown.
//
// Library functions (not just a main) so the smoke tests can drive the
// daemon in-process without spawning it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cinderella::tools {

struct ServeToolOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (announced on stdout).
  int port = 0;
  /// Solver pool workers; 0 = one per hardware thread.
  int poolThreads = 0;
  /// Concurrent solves before overload admission; 0 = twice the pool.
  int maxInflight = 0;
  /// Deadline clamp (ms) for requests admitted under overload.
  std::int64_t overloadDeadlineMs = 50;
  /// Solve-cache entries per store; 0 disables caching.
  std::size_t cacheEntries = 1024;
  /// Cache snapshot file: restored on start, written on shutdown.  A
  /// `<file>.journal` of admissions rides along so a kill -9 between
  /// snapshots loses nothing.
  std::string snapshotPath;
  /// Budget for in-flight analyses to finish once a drain begins
  /// (SIGTERM/SIGINT or the "drain" op); a clean drain exits 5, expiry
  /// exits 6.
  std::int64_t drainTimeoutMs = 30'000;
  /// Per-connection frame-size quota (bytes); longer lines answer a
  /// typed "toolarge" error and are discarded.
  std::size_t maxRequestBytes = 16u << 20;
  /// Analyses allowed to wait beyond --max-inflight before arrivals are
  /// rejected with "overloaded"; -1 = unbounded.
  int maxQueuedRequests = -1;
  /// Per-request solve memory ceiling (MiB); 0 = none.
  std::size_t maxRequestMemoryMb = 0;
  /// Chaos testing: probability of an injected snapshot write/fsync
  /// fault per opportunity, in [0, 1]; 0 = off.
  double faultRate = 0.0;
  /// Seed for the deterministic fault stream.
  std::uint64_t faultSeed = 1;
  /// Chrome trace-event JSON of every request span, written on shutdown.
  std::string traceOut;
  /// Structured NDJSON request log ("-" = stderr).
  std::string logOut;
  /// Minimum log level: debug, info, warn, error.
  std::string logLevel = "info";
  /// Requests slower than this additionally log a "slow-request" record
  /// with the request's span tree; 0 disables.
  std::int64_t slowMs = 0;
  /// Flight-recorder ring capacity (last N requests, always on).
  std::size_t flightEntries = 256;
  /// Flight-recorder dump file, written on shutdown and (best-effort)
  /// from the SIGSEGV/SIGABRT crash handlers.
  std::string flightOut;
};

/// Parses argv.  Returns false (after printing usage to `err`) when the
/// command line is invalid or --help was requested.
bool parseServeArgs(int argc, const char* const* argv,
                    ServeToolOptions* options, std::ostream& err);

/// Runs the daemon until a {"op":"shutdown"} frame arrives, or a drain
/// (SIGTERM, SIGINT, or a {"op":"drain"} frame) completes.  Announces
/// `cinderella-serve: listening on 127.0.0.1:<port>` on `out` once
/// ready.  Returns the process exit code: 0 after a shutdown frame,
/// 1 on a startup/usage failure, 4 on an internal error, 5 after a
/// clean drain (all in-flight work finished), 6 when the drain timeout
/// expired with work still in flight (the snapshot is still written).
int runServeTool(const ServeToolOptions& options, std::ostream& out,
                 std::ostream& err);

}  // namespace cinderella::tools
