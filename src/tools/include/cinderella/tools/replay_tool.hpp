// The `cinderella-replay` client: replays a workload — generated fuzz
// programs, MiniC files from a directory, and/or the built-in benchmark
// suite — against a running cinderella-serve daemon, several passes
// over the same inputs, and verifies the serving contract:
//
//   * every response to the same input carries a bit-identical bound
//     (cache hits must not change answers), and
//   * from the second pass on, identical submissions hit the bound
//     cache (the hit rate is printed and can gate CI via
//     --min-hit-rate).
//
// Library entry points so tests can run it in-process.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cinderella::tools {

struct ReplayToolOptions {
  /// Daemon port on 127.0.0.1 (required).
  int port = 0;
  /// Replay `generate` seeded fuzz programs (0 = none).
  int generate = 0;
  std::uint64_t seed = 1;
  /// Replay every *.mc file in this directory (non-recursive).
  std::string dir;
  /// Replay the built-in Table-I benchmark suite.
  bool benchmarks = false;
  /// Passes over the whole input list (>= 1; cache hits are expected
  /// from pass 2 on).
  int repeat = 2;
  /// Per-request solver threads.
  int jobs = 1;
  /// Per-request cache policy ("readwrite", "readonly", "bypass").
  std::string cachePolicy = "readwrite";
  /// Exit 1 unless bound-cache hits / lookups >= this (0 disables).
  double minHitRate = 0.0;
  /// Print one machine-readable JSON line with per-pass p50/p90/p99
  /// latency and the overall hit rate after the replay.
  bool latencyJson = false;
  /// Scrape the daemon's "metrics" op and write the Prometheus text
  /// exposition here ("-" = stdout).
  std::string metricsOut;
  /// Fetch the daemon's flight recorder and write the dump envelope
  /// here ("-" = stdout).
  std::string flightOut;
  /// Send {"op":"shutdown"} to the daemon after the replay.
  bool shutdown = false;
  /// Send {"op":"drain"} to the daemon after the replay (graceful stop).
  bool drain = false;
  /// Retry attempts per request beyond the first (serve::RetryPolicy);
  /// 0 = fail fast.  Transport loss reconnects; "overloaded" backs off.
  int retries = 0;
  /// Initial retry backoff (doubles per retry, ±20% jitter).
  std::int64_t retryBackoffMs = 25;
  /// Write one "label lo hi" line per input here after the replay ("-"
  /// = stdout) — the chaos harness diffs these across restarts.
  std::string boundsOut;
  /// Read "label lo hi" lines (a previous --bounds-out) and exit 3
  /// unless every replayed input reproduces its recorded bound
  /// bit-identically.
  std::string expectBounds;
};

bool parseReplayArgs(int argc, const char* const* argv,
                     ReplayToolOptions* options, std::ostream& err);

/// Runs the replay.  Exit codes: 0 success; 1 usage/transport error or
/// gate failure; 2 bound mismatch between passes (a caching unsoundness
/// — never expected); 3 a bound diverged from --expect-bounds (a
/// crash-recovery unsoundness — never expected).
int runReplayTool(const ReplayToolOptions& options, std::ostream& out,
                  std::ostream& err);

}  // namespace cinderella::tools
