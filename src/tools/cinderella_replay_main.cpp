#include <iostream>

#include "cinderella/tools/replay_tool.hpp"

int main(int argc, char** argv) {
  cinderella::tools::ReplayToolOptions options;
  if (!cinderella::tools::parseReplayArgs(argc, argv, &options, std::cerr)) {
    return 1;
  }
  return cinderella::tools::runReplayTool(options, std::cout, std::cerr);
}
