#include "cinderella/tools/replay_tool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "cinderella/fuzz/generator.hpp"
#include "cinderella/obs/json.hpp"
#include "cinderella/obs/metrics.hpp"
#include "cinderella/serve/client.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/error.hpp"

namespace cinderella::tools {

namespace {

constexpr const char* kReplayUsage = R"(usage: cinderella-replay [options]

Replays a workload against a running cinderella-serve daemon, several
passes over the same inputs, verifying that repeated submissions return
bit-identical bounds and (from the second pass on) hit the daemon's
solve cache.

options:
  --port <N>            daemon port on 127.0.0.1 (required)
  --generate <N>        replay N seeded fuzz-generated programs
  --seed <S>            base seed for --generate (default 1)
  --dir <path>          replay every *.mc file in <path>
  --benchmarks          replay the built-in Table-I benchmark suite
  --repeat <N>          passes over the input list (default 2)
  --jobs <N>            per-request solver threads (default 1)
  --cache-policy <p>    readwrite (default), readonly, or bypass
  --min-hit-rate <X>    exit 1 unless bound hits / lookups >= X
  --latency-json        print one JSON line with per-pass p50/p90/p99
                        request latency and the overall hit rate
  --metrics-out <file>  scrape the daemon's metrics op afterwards and
                        write the Prometheus text exposition ("-" = stdout)
  --flight-out <file>   fetch the daemon's flight recorder afterwards and
                        write the dump envelope ("-" = stdout)
  --retries <N>         retry each request up to N extra times on
                        transport loss (reconnecting) or a typed
                        "overloaded" rejection, with exponential backoff
                        and jitter (default 0 = fail fast)
  --retry-backoff-ms <N> initial retry backoff; doubles per retry
                        (default 25)
  --bounds-out <file>   write one "label lo hi" line per input afterwards
                        ("-" = stdout); a later run can verify against it
  --expect-bounds <file> verify every bound against a previous
                        --bounds-out file; any divergence exits 3
  --shutdown            ask the daemon to shut down afterwards
  --drain               ask the daemon to drain gracefully afterwards
  --help                show this message

exit codes:
  0  success
  1  usage, transport, analysis or hit-rate-gate failure
  2  a repeated input came back with a different bound (cache bug)
  3  a bound diverged from --expect-bounds (crash-recovery bug)
)";

struct ReplayInput {
  std::string label;
  ipet::AnalysisRequest request;
};

/// Client-observed latency samples for one pass over the input list.
struct PassLatency {
  std::int64_t requests = 0;
  std::int64_t cacheHits = 0;
  std::vector<std::int64_t> micros;
};

/// Writes `text` to `path`, with "-" meaning stdout.  Returns false
/// (with a diagnostic on `err`) when the file cannot be written.
bool writeTextOutput(const std::string& path, const std::string& text,
                     std::ostream& out, std::ostream& err,
                     const char* what) {
  if (path == "-") {
    out << text;
    if (text.empty() || text.back() != '\n') out << '\n';
    return true;
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    err << "cinderella-replay: cannot write " << what << " to '" << path
        << "'\n";
    return false;
  }
  file << text;
  if (text.empty() || text.back() != '\n') file << '\n';
  return true;
}

}  // namespace

bool parseReplayArgs(int argc, const char* const* argv,
                     ReplayToolOptions* options, std::ostream& err) {
  auto needValue = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err << "cinderella-replay: " << flag << " needs an argument\n"
          << kReplayUsage;
      return nullptr;
    }
    return argv[++i];
  };
  auto intValue = [&](int& i, const char* flag, long long lo, long long hi,
                      long long* out) {
    const char* v = needValue(i, flag);
    if (!v) return false;
    char* end = nullptr;
    const long long value = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || value < lo || value > hi) {
      err << "cinderella-replay: " << flag << " needs an integer in ["
          << lo << ", " << hi << "]\n";
      return false;
    }
    *out = value;
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long value = 0;
    if (arg == "--help" || arg == "-h") {
      err << kReplayUsage;
      return false;
    } else if (arg == "--port") {
      if (!intValue(i, "--port", 1, 65535, &value)) return false;
      options->port = static_cast<int>(value);
    } else if (arg == "--generate") {
      if (!intValue(i, "--generate", 0, 100000, &value)) return false;
      options->generate = static_cast<int>(value);
    } else if (arg == "--seed") {
      if (!intValue(i, "--seed", 0, INT64_MAX, &value)) return false;
      options->seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--dir") {
      const char* v = needValue(i, "--dir");
      if (!v) return false;
      options->dir = v;
    } else if (arg == "--benchmarks") {
      options->benchmarks = true;
    } else if (arg == "--repeat") {
      if (!intValue(i, "--repeat", 1, 1000, &value)) return false;
      options->repeat = static_cast<int>(value);
    } else if (arg == "--jobs") {
      if (!intValue(i, "--jobs", 0, 1024, &value)) return false;
      options->jobs = static_cast<int>(value);
    } else if (arg == "--cache-policy") {
      const char* v = needValue(i, "--cache-policy");
      if (!v) return false;
      options->cachePolicy = v;
    } else if (arg == "--min-hit-rate") {
      const char* v = needValue(i, "--min-hit-rate");
      if (!v) return false;
      char* end = nullptr;
      const double rate = std::strtod(v, &end);
      if (end == v || *end != '\0' || rate < 0.0 || rate > 1.0) {
        err << "cinderella-replay: --min-hit-rate needs a number in "
               "[0, 1]\n";
        return false;
      }
      options->minHitRate = rate;
    } else if (arg == "--latency-json") {
      options->latencyJson = true;
    } else if (arg == "--metrics-out") {
      const char* v = needValue(i, "--metrics-out");
      if (!v) return false;
      options->metricsOut = v;
    } else if (arg == "--flight-out") {
      const char* v = needValue(i, "--flight-out");
      if (!v) return false;
      options->flightOut = v;
    } else if (arg == "--retries") {
      if (!intValue(i, "--retries", 0, 1000, &value)) return false;
      options->retries = static_cast<int>(value);
    } else if (arg == "--retry-backoff-ms") {
      if (!intValue(i, "--retry-backoff-ms", 1, 60'000, &value)) return false;
      options->retryBackoffMs = value;
    } else if (arg == "--bounds-out") {
      const char* v = needValue(i, "--bounds-out");
      if (!v) return false;
      options->boundsOut = v;
    } else if (arg == "--expect-bounds") {
      const char* v = needValue(i, "--expect-bounds");
      if (!v) return false;
      options->expectBounds = v;
    } else if (arg == "--shutdown") {
      options->shutdown = true;
    } else if (arg == "--drain") {
      options->drain = true;
    } else {
      err << "cinderella-replay: unknown option '" << arg << "'\n"
          << kReplayUsage;
      return false;
    }
  }
  if (options->port == 0) {
    err << "cinderella-replay: --port is required\n" << kReplayUsage;
    return false;
  }
  if (options->generate == 0 && options->dir.empty() &&
      !options->benchmarks) {
    err << "cinderella-replay: no workload (--generate, --dir or "
           "--benchmarks)\n"
        << kReplayUsage;
    return false;
  }
  return true;
}

int runReplayTool(const ReplayToolOptions& options, std::ostream& out,
                  std::ostream& err) {
  const auto policy = ipet::parseCachePolicy(options.cachePolicy);
  if (!policy) {
    err << "cinderella-replay: unknown cache policy '" << options.cachePolicy
        << "'\n";
    return 1;
  }

  std::vector<ReplayInput> inputs;
  if (options.generate > 0) {
    fuzz::GeneratorOptions generatorOptions;
    generatorOptions.emitConstraints = true;
    fuzz::ProgramGenerator generator(generatorOptions);
    for (int i = 0; i < options.generate; ++i) {
      const fuzz::GeneratedProgram program =
          generator.generate(fuzz::deriveSeed(options.seed,
                                              static_cast<std::uint64_t>(i)));
      ReplayInput input;
      input.label = "fuzz-" + std::to_string(program.seed);
      input.request.label = input.label;
      input.request.source = program.source;
      input.request.root = program.root;
      for (const std::string& c : program.constraints) {
        input.request.constraints.push_back({c, ""});
      }
      inputs.push_back(std::move(input));
    }
  }
  if (!options.dir.empty()) {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(options.dir, ec)) {
      if (entry.path().extension() == ".mc") files.push_back(entry.path());
    }
    if (ec) {
      err << "cinderella-replay: cannot read '" << options.dir
          << "': " << ec.message() << "\n";
      return 1;
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      std::ifstream in(path);
      if (!in) {
        err << "cinderella-replay: cannot open '" << path.string() << "'\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      ReplayInput input;
      input.label = path.filename().string();
      input.request.label = input.label;
      input.request.source = buffer.str();
      inputs.push_back(std::move(input));
    }
  }
  if (options.benchmarks) {
    // Resolved daemon-side: the request only carries the name.
    for (const suite::Benchmark& benchmark : suite::allBenchmarks()) {
      ReplayInput input;
      input.label = benchmark.name;
      input.request.benchmark = benchmark.name;
      inputs.push_back(std::move(input));
    }
  }
  if (inputs.empty()) {
    err << "cinderella-replay: the workload is empty\n";
    return 1;
  }
  for (ReplayInput& input : inputs) {
    input.request.cachePolicy = *policy;
    input.request.control.threads = options.jobs;
  }

  // Expected bounds from a previous --bounds-out run (the chaos harness
  // uses this to prove a restarted daemon re-serves identical answers).
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> expected;
  if (!options.expectBounds.empty()) {
    std::ifstream in(options.expectBounds);
    if (!in) {
      err << "cinderella-replay: cannot open --expect-bounds file '"
          << options.expectBounds << "'\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      std::string label;
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      if (!(fields >> label >> lo >> hi)) {
        err << "cinderella-replay: malformed --expect-bounds line: " << line
            << "\n";
        return 1;
      }
      expected[label] = {lo, hi};
    }
  }

  serve::Client client;
  std::string error;
  if (!client.connect(options.port, &error)) {
    err << "cinderella-replay: " << error << "\n";
    return 1;
  }
  if (options.retries > 0) {
    serve::RetryPolicy retry;
    retry.maxAttempts = options.retries + 1;
    retry.initialBackoffMs = options.retryBackoffMs;
    client.setRetryPolicy(retry);
  }

  std::map<std::string, std::pair<std::int64_t, std::int64_t>> firstBounds;
  std::vector<PassLatency> passes;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  for (int pass = 0; pass < options.repeat; ++pass) {
    PassLatency latency;
    for (const ReplayInput& input : inputs) {
      const auto callStart = std::chrono::steady_clock::now();
      const std::optional<serve::Response> response =
          client.analyze(input.request, &error);
      const std::int64_t callMicros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - callStart)
              .count();
      if (!response) {
        err << "cinderella-replay: " << input.label << ": " << error << "\n";
        return 1;
      }
      if (!response->ok) {
        err << "cinderella-replay: " << input.label << ": daemon error ("
            << response->errorCode << "): " << response->error << "\n";
        return 1;
      }
      ++total;
      ++latency.requests;
      latency.micros.push_back(callMicros);
      if (response->cacheHit) {
        ++hits;
        ++latency.cacheHits;
      }
      const std::pair<std::int64_t, std::int64_t> bound{response->boundLo,
                                                        response->boundHi};
      const auto [it, inserted] = firstBounds.emplace(input.label, bound);
      if (!inserted && it->second != bound) {
        err << "cinderella-replay: " << input.label
            << ": bound changed across passes: [" << it->second.first << ", "
            << it->second.second << "] then [" << bound.first << ", "
            << bound.second << "]\n";
        return 2;
      }
      const auto want = expected.find(input.label);
      if (want != expected.end() && want->second != bound) {
        err << "cinderella-replay: " << input.label
            << ": bound diverged from " << options.expectBounds << ": expected ["
            << want->second.first << ", " << want->second.second << "], got ["
            << bound.first << ", " << bound.second << "]\n";
        return 3;
      }
    }
    out << "pass " << (pass + 1) << "/" << options.repeat << ": "
        << inputs.size() << " request(s), " << latency.cacheHits
        << " cache hit(s)\n";
    passes.push_back(std::move(latency));
  }

  const double hitRate =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  const serve::RetryStats& retryStats = client.retryStats();
  out << "replayed " << inputs.size() << " input(s) x " << options.repeat
      << " pass(es): " << hits << "/" << total << " bound-cache hit(s) ("
      << static_cast<int>(hitRate * 100.0) << "%)";
  if (retryStats.retries > 0) {
    out << ", " << retryStats.retries << " retr"
        << (retryStats.retries == 1 ? "y" : "ies") << " ("
        << retryStats.reconnects << " reconnect(s))";
  }
  out << "\n";

  if (options.latencyJson) {
    obs::JsonWriter w;
    w.beginObject().key("passes").beginArray();
    for (std::size_t i = 0; i < passes.size(); ++i) {
      const PassLatency& pass = passes[i];
      w.beginObject()
          .key("pass")
          .value(static_cast<std::int64_t>(i + 1))
          .key("requests")
          .value(pass.requests)
          .key("cacheHits")
          .value(pass.cacheHits)
          .key("p50Micros")
          .value(obs::percentileOf(pass.micros, 0.50))
          .key("p90Micros")
          .value(obs::percentileOf(pass.micros, 0.90))
          .key("p99Micros")
          .value(obs::percentileOf(pass.micros, 0.99))
          .endObject();
    }
    w.endArray()
        .key("requests")
        .value(total)
        .key("cacheHits")
        .value(hits)
        .key("hitRate")
        .value(hitRate)
        .key("retries")
        .value(retryStats.retries)
        .key("reconnects")
        .value(retryStats.reconnects)
        .endObject();
    out << w.str() << "\n";
  }

  if (!options.boundsOut.empty()) {
    std::ostringstream bounds;
    for (const auto& [label, bound] : firstBounds) {
      bounds << label << ' ' << bound.first << ' ' << bound.second << '\n';
    }
    if (!writeTextOutput(options.boundsOut, bounds.str(), out, err,
                         "bounds")) {
      return 1;
    }
  }

  if (!options.metricsOut.empty()) {
    const std::optional<serve::Response> response = client.metrics(&error);
    if (!response || !response->ok) {
      err << "cinderella-replay: metrics: "
          << (!response ? error : response->error) << "\n";
      return 1;
    }
    if (!writeTextOutput(options.metricsOut,
                         response->raw.stringOr("prometheus", ""), out, err,
                         "metrics")) {
      return 1;
    }
  }
  if (!options.flightOut.empty()) {
    const std::optional<serve::Response> response =
        client.flightrecorder(&error);
    if (!response || !response->ok) {
      err << "cinderella-replay: flightrecorder: "
          << (!response ? error : response->error) << "\n";
      return 1;
    }
    if (!writeTextOutput(options.flightOut, response->rawText, out, err,
                         "flight recorder dump")) {
      return 1;
    }
  }

  if (options.drain) {
    if (!client.drain(&error)) {
      err << "cinderella-replay: drain: " << error << "\n";
      return 1;
    }
  }
  if (options.shutdown) {
    if (!client.shutdown(&error)) {
      err << "cinderella-replay: shutdown: " << error << "\n";
      return 1;
    }
  }
  if (options.minHitRate > 0.0 && hitRate < options.minHitRate) {
    err << "cinderella-replay: hit rate " << hitRate << " below required "
        << options.minHitRate << "\n";
    return 1;
  }
  return 0;
}

}  // namespace cinderella::tools
