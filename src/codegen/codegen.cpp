#include "cinderella/codegen/codegen.hpp"

#include <bit>
#include <cstdint>

#include "cinderella/lang/loop_inference.hpp"
#include "cinderella/lang/parser.hpp"
#include "cinderella/lang/sema.hpp"
#include "cinderella/support/error.hpp"

namespace cinderella::codegen {

using lang::BinaryOp;
using lang::Expr;
using lang::ExprKind;
using lang::Stmt;
using lang::StmtKind;
using lang::Storage;
using lang::Symbol;
using lang::Type;
using lang::UnaryOp;
using vm::Instr;
using vm::Opcode;

namespace {

class FunctionCompiler {
 public:
  FunctionCompiler(const lang::FunctionDecl& decl,
                   const std::vector<int>& functionIndex,
                   std::vector<LoopAnnotation>* loops)
      : decl_(decl), functionIndex_(functionIndex), loops_(loops) {}

  vm::Function run() {
    fn_.name = decl_.name;
    fn_.numParams = static_cast<int>(decl_.params.size());
    nextReg_ = fn_.numParams;

    // Parameters already resolved by sema as the first symbols.
    int paramIdx = 0;
    for (const auto& sym : decl_.symbols) {
      if (sym->storage == Storage::Param) {
        sym->location = paramIdx++;
      }
    }
    CIN_REQUIRE(paramIdx == fn_.numParams);

    genStmt(*decl_.body);

    // Fall-off-the-end return.  Also needed when control can only reach
    // the end via a forward branch (e.g. the join point of an if/else
    // whose arms both return): such branches target code.size().
    bool branchesToEnd = false;
    for (const Instr& in : fn_.code) {
      if ((in.op == Opcode::Br || in.op == Opcode::Bt ||
           in.op == Opcode::Bf) &&
          in.imm == static_cast<std::int64_t>(fn_.code.size())) {
        branchesToEnd = true;
        break;
      }
    }
    if (fn_.code.empty() || fn_.code.back().op != Opcode::Ret ||
        branchesToEnd) {
      if (decl_.returnType == Type::Void) {
        emit({.op = Opcode::Ret, .rs1 = -1});
      } else {
        const int r = freshReg();
        emit({.op = Opcode::MovI, .rd = r, .imm = 0});
        emit({.op = Opcode::Ret, .rs1 = r});
      }
    }

    fn_.numRegs = nextReg_;
    fn_.frameWords = frameWords_;
    return std::move(fn_);
  }

 private:
  int freshReg() { return nextReg_++; }

  int emit(Instr instr) {
    if (!instr.loc.isKnown()) instr.loc = currentLoc_;
    fn_.code.push_back(std::move(instr));
    return static_cast<int>(fn_.code.size()) - 1;
  }

  [[nodiscard]] int here() const { return static_cast<int>(fn_.code.size()); }

  void patchTarget(int instrIndex, int target) {
    fn_.code[static_cast<std::size_t>(instrIndex)].imm = target;
  }

  void recordLoop(const Stmt& stmt, int headerInstr, int bodyInstr,
                  int backEdgeInstr) {
    LoopAnnotation loop;
    loop.headerInstr = headerInstr;
    loop.bodyInstr = bodyInstr;
    loop.backEdgeInstr = backEdgeInstr;
    loop.lo = stmt.loopLo;
    loop.hi = stmt.loopHi;
    loop.line = stmt.loc.line;
    if (loop.lo < 0) {
      // No annotation: fall back to automatic trip-count inference for
      // canonical counted loops (paper Section VII future work).
      if (const auto trips = lang::inferTripCount(stmt)) {
        loop.lo = trips->first;
        loop.hi = trips->second;
      }
    }
    loops_->push_back(loop);  // function index filled in by compile()
  }

  // -------------------------------------------------------------------
  // Statements.

  void genStmt(const Stmt& stmt) {
    currentLoc_ = stmt.loc;
    switch (stmt.kind) {
      case StmtKind::Block:
        for (const auto& s : stmt.body) genStmt(*s);
        break;
      case StmtKind::Decl: {
        Symbol* sym = stmt.declSymbol;
        CIN_REQUIRE(sym != nullptr);
        if (sym->isArray) {
          sym->location = frameWords_;
          frameWords_ += sym->arraySize;
        } else {
          sym->location = freshReg();
          if (stmt.value) {
            const int v = genExpr(*stmt.value);
            emit({.op = Opcode::Mov, .rd = sym->location, .rs1 = v});
          }
        }
        break;
      }
      case StmtKind::Assign:
        genAssign(stmt);
        break;
      case StmtKind::ExprStmt:
        genExpr(*stmt.value);
        break;
      case StmtKind::If: {
        const int cond = genExpr(*stmt.cond);
        const int skipThen = emit({.op = Opcode::Bf, .rs1 = cond});
        for (const auto& s : stmt.body) genStmt(*s);
        if (!stmt.elseBody.empty()) {
          // The join branch belongs to the if statement itself, not to
          // the last statement of the then-arm: the continuation block
          // it opens must not appear to "start" on that statement's line
          // (line-anchored @L constraints depend on this).
          const int skipElse =
              emit({.op = Opcode::Br, .loc = stmt.loc});
          patchTarget(skipThen, here());
          for (const auto& s : stmt.elseBody) genStmt(*s);
          patchTarget(skipElse, here());
        } else {
          patchTarget(skipThen, here());
        }
        break;
      }
      case StmtKind::While: {
        const int top = here();
        const int cond = genExpr(*stmt.cond);
        currentLoc_ = stmt.loc;
        const int exit = emit({.op = Opcode::Bf, .rs1 = cond});
        const int bodyStart = here();
        for (const auto& s : stmt.body) genStmt(*s);
        const int backEdge = emit({.op = Opcode::Br, .imm = top, .loc = stmt.loc});
        patchTarget(exit, here());
        recordLoop(stmt, top, bodyStart, backEdge);
        break;
      }
      case StmtKind::For: {
        if (stmt.init) genStmt(*stmt.init);
        const int top = here();
        int exit = -1;
        if (stmt.cond) {
          const int cond = genExpr(*stmt.cond);
          currentLoc_ = stmt.loc;
          exit = emit({.op = Opcode::Bf, .rs1 = cond});
        }
        const int bodyStart = here();
        for (const auto& s : stmt.body) genStmt(*s);
        if (stmt.step) genStmt(*stmt.step);
        const int backEdge = emit({.op = Opcode::Br, .imm = top, .loc = stmt.loc});
        if (exit >= 0) patchTarget(exit, here());
        recordLoop(stmt, top, bodyStart, backEdge);
        break;
      }
      case StmtKind::Return: {
        if (stmt.value) {
          const int v = genExpr(*stmt.value);
          currentLoc_ = stmt.loc;
          emit({.op = Opcode::Ret, .rs1 = v});
        } else {
          emit({.op = Opcode::Ret, .rs1 = -1});
        }
        break;
      }
    }
  }

  void genAssign(const Stmt& stmt) {
    const Symbol* target = stmt.targetSymbol;
    CIN_REQUIRE(target != nullptr);
    const int value = genExpr(*stmt.value);
    currentLoc_ = stmt.loc;

    if (stmt.targetIndex) {
      const int index = genExpr(*stmt.targetIndex);
      currentLoc_ = stmt.loc;
      storeElement(*target, index, value);
      return;
    }

    switch (target->storage) {
      case Storage::Global:
        emit({.op = Opcode::St, .rs1 = -1, .rs2 = value,
              .imm = target->location});
        break;
      case Storage::Param:
      case Storage::Local:
        emit({.op = Opcode::Mov, .rd = target->location, .rs1 = value});
        break;
    }
  }

  /// mem[element address of target[index]] <- value.
  void storeElement(const Symbol& target, int indexReg, int valueReg) {
    if (target.storage == Storage::Global) {
      emit({.op = Opcode::St, .rs1 = indexReg, .rs2 = valueReg,
            .imm = target.location});
    } else {
      const int base = freshReg();
      emit({.op = Opcode::FrameAddr, .rd = base, .imm = target.location});
      const int addr = freshReg();
      emit({.op = Opcode::Add, .rd = addr, .rs1 = base, .rs2 = indexReg});
      emit({.op = Opcode::St, .rs1 = addr, .rs2 = valueReg, .imm = 0});
    }
  }

  /// rd <- target[index].
  int loadElement(const Symbol& target, int indexReg) {
    const int rd = freshReg();
    if (target.storage == Storage::Global) {
      emit({.op = Opcode::Ld, .rd = rd, .rs1 = indexReg,
            .imm = target.location});
    } else {
      const int base = freshReg();
      emit({.op = Opcode::FrameAddr, .rd = base, .imm = target.location});
      const int addr = freshReg();
      emit({.op = Opcode::Add, .rd = addr, .rs1 = base, .rs2 = indexReg});
      emit({.op = Opcode::Ld, .rd = rd, .rs1 = addr, .imm = 0});
    }
    return rd;
  }

  // -------------------------------------------------------------------
  // Expressions.  Each returns the register holding the result.

  int genExpr(const Expr& expr) {
    currentLoc_ = expr.loc;
    switch (expr.kind) {
      case ExprKind::IntLit: {
        const int rd = freshReg();
        emit({.op = Opcode::MovI, .rd = rd, .imm = expr.intValue});
        return rd;
      }
      case ExprKind::FloatLit: {
        const int rd = freshReg();
        emit({.op = Opcode::MovF, .rd = rd, .fimm = expr.floatValue});
        return rd;
      }
      case ExprKind::VarRef: {
        const Symbol* sym = expr.symbol;
        CIN_REQUIRE(sym != nullptr);
        if (sym->storage == Storage::Global) {
          const int rd = freshReg();
          emit({.op = Opcode::Ld, .rd = rd, .rs1 = -1, .imm = sym->location});
          return rd;
        }
        return sym->location;  // params and local scalars live in registers
      }
      case ExprKind::Index: {
        const int index = genExpr(*expr.lhs);
        currentLoc_ = expr.loc;
        return loadElement(*expr.symbol, index);
      }
      case ExprKind::Cast: {
        const int v = genExpr(*expr.lhs);
        currentLoc_ = expr.loc;
        const int rd = freshReg();
        if (expr.type == Type::Float) {
          emit({.op = Opcode::CvtIF, .rd = rd, .rs1 = v});
        } else {
          emit({.op = Opcode::CvtFI, .rd = rd, .rs1 = v});
        }
        return rd;
      }
      case ExprKind::Unary: {
        const int v = genExpr(*expr.lhs);
        currentLoc_ = expr.loc;
        const int rd = freshReg();
        switch (expr.uop) {
          case UnaryOp::Neg:
            emit({.op = expr.type == Type::Float ? Opcode::FNeg : Opcode::Neg,
                  .rd = rd, .rs1 = v});
            break;
          case UnaryOp::LogNot: {
            // !x  ==  (x == 0)
            const int zero = freshReg();
            emit({.op = Opcode::MovI, .rd = zero, .imm = 0});
            emit({.op = Opcode::CmpEq, .rd = rd, .rs1 = v, .rs2 = zero});
            break;
          }
          case UnaryOp::BitNot:
            emit({.op = Opcode::Not, .rd = rd, .rs1 = v});
            break;
        }
        return rd;
      }
      case ExprKind::Binary:
        if (expr.bop == BinaryOp::LogAnd || expr.bop == BinaryOp::LogOr) {
          return genShortCircuit(expr);
        }
        return genArith(expr);
      case ExprKind::Call:
        return genCall(expr);
    }
    CIN_REQUIRE(false && "unreachable expression kind");
    return -1;
  }

  int genArith(const Expr& expr) {
    const int a = genExpr(*expr.lhs);
    const int b = genExpr(*expr.rhs);
    currentLoc_ = expr.loc;
    const int rd = freshReg();
    const bool isFloatOperands = expr.lhs->type == Type::Float;
    Opcode op;
    switch (expr.bop) {
      case BinaryOp::Add: op = isFloatOperands ? Opcode::FAdd : Opcode::Add; break;
      case BinaryOp::Sub: op = isFloatOperands ? Opcode::FSub : Opcode::Sub; break;
      case BinaryOp::Mul: op = isFloatOperands ? Opcode::FMul : Opcode::Mul; break;
      case BinaryOp::Div: op = isFloatOperands ? Opcode::FDiv : Opcode::Div; break;
      case BinaryOp::Rem: op = Opcode::Rem; break;
      case BinaryOp::BitAnd: op = Opcode::And; break;
      case BinaryOp::BitOr: op = Opcode::Or; break;
      case BinaryOp::BitXor: op = Opcode::Xor; break;
      case BinaryOp::Shl: op = Opcode::Shl; break;
      case BinaryOp::Shr: op = Opcode::Shr; break;
      case BinaryOp::Eq: op = isFloatOperands ? Opcode::FCmpEq : Opcode::CmpEq; break;
      case BinaryOp::Ne: op = isFloatOperands ? Opcode::FCmpNe : Opcode::CmpNe; break;
      case BinaryOp::Lt: op = isFloatOperands ? Opcode::FCmpLt : Opcode::CmpLt; break;
      case BinaryOp::Le: op = isFloatOperands ? Opcode::FCmpLe : Opcode::CmpLe; break;
      case BinaryOp::Gt: op = isFloatOperands ? Opcode::FCmpGt : Opcode::CmpGt; break;
      case BinaryOp::Ge: op = isFloatOperands ? Opcode::FCmpGe : Opcode::CmpGe; break;
      default:
        CIN_REQUIRE(false && "logical ops handled elsewhere");
        return -1;
    }
    emit({.op = op, .rd = rd, .rs1 = a, .rs2 = b});
    return rd;
  }

  /// Short-circuit && / || lowered to branches, like a real C compiler.
  int genShortCircuit(const Expr& expr) {
    const int rd = freshReg();
    const int a = genExpr(*expr.lhs);
    currentLoc_ = expr.loc;
    int skip;
    if (expr.bop == BinaryOp::LogAnd) {
      // result = 0; if (a) { result = (b != 0); }
      emit({.op = Opcode::MovI, .rd = rd, .imm = 0});
      skip = emit({.op = Opcode::Bf, .rs1 = a});
    } else {
      // result = 1; if (!a) { result = (b != 0); }
      emit({.op = Opcode::MovI, .rd = rd, .imm = 1});
      skip = emit({.op = Opcode::Bt, .rs1 = a});
    }
    const int b = genExpr(*expr.rhs);
    currentLoc_ = expr.loc;
    const int zero = freshReg();
    emit({.op = Opcode::MovI, .rd = zero, .imm = 0});
    emit({.op = Opcode::CmpNe, .rd = rd, .rs1 = b, .rs2 = zero});
    patchTarget(skip, here());
    return rd;
  }

  int genCall(const Expr& expr) {
    std::vector<int> argRegs;
    argRegs.reserve(expr.args.size());
    for (const auto& arg : expr.args) argRegs.push_back(genExpr(*arg));
    currentLoc_ = expr.loc;
    const int rd = freshReg();
    CIN_REQUIRE(expr.calleeIndex >= 0);
    emit({.op = Opcode::Call, .rd = rd,
          .imm = functionIndex_[static_cast<std::size_t>(expr.calleeIndex)],
          .args = argRegs});
    return rd;
  }

  const lang::FunctionDecl& decl_;
  const std::vector<int>& functionIndex_;
  std::vector<LoopAnnotation>* loops_;
  vm::Function fn_;
  int nextReg_ = 0;
  int frameWords_ = 0;
  SourceLoc currentLoc_;
};

std::uint64_t encodeInitValue(double value, bool isFloat) {
  if (isFloat) return std::bit_cast<std::uint64_t>(value);
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(value));
}

}  // namespace

CompileResult compile(const lang::Program& program) {
  CompileResult result;

  // Globals first, so codegen can reference their offsets.
  for (const auto& g : program.globals) {
    CIN_REQUIRE(g.symbol != nullptr && "run lang::analyze before compile");
    const int size = g.arraySize > 0 ? g.arraySize : 1;
    const vm::GlobalVar& var =
        result.module.addGlobal(g.name, size, g.type == Type::Float);
    g.symbol->location = var.offset;
    for (std::size_t i = 0; i < g.init.size(); ++i) {
      result.module.setGlobalWord(
          var.offset + static_cast<int>(i),
          encodeInitValue(g.init[i], g.type == Type::Float));
    }
  }

  // VM function indices coincide with program order (needed before
  // bodies are compiled so calls, including forward calls, resolve).
  result.functionIndex.resize(program.functions.size());
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    result.functionIndex[i] = static_cast<int>(i);
  }

  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    std::vector<LoopAnnotation> loops;
    FunctionCompiler compiler(program.functions[i], result.functionIndex,
                              &loops);
    const int fnIndex = result.module.addFunction(compiler.run());
    for (auto& loop : loops) {
      loop.function = fnIndex;
      result.loops.push_back(loop);
    }
  }

  result.module.layout();
  return result;
}

CompileResult compileSource(std::string_view source) {
  lang::Program program = lang::parse(source);
  lang::analyze(program);
  return compile(program);
}

}  // namespace cinderella::codegen
