// MiniC -> VISA code generation.
//
// The generator is deliberately a straightforward non-optimizing
// compiler: one virtual register per local scalar, fresh temporaries per
// expression, short-circuit booleans lowered to branches.  This mirrors
// the embedded compilers of the paper's era closely enough for the
// timing analysis to be interesting while keeping codegen fully
// predictable for tests.
#pragma once

#include "cinderella/lang/ast.hpp"
#include "cinderella/vm/module.hpp"

namespace cinderella::codegen {

/// Source-level loop-bound annotation carried through to machine level,
/// so the analysis can attach the paper's `lo*x_pre <= x_body <= hi*x_pre`
/// constraints without re-reading the source.
struct LoopAnnotation {
  int function = -1;      ///< VM function index.
  int headerInstr = -1;   ///< First instruction of the loop condition.
  int bodyInstr = -1;     ///< First instruction of the loop body.
  int backEdgeInstr = -1; ///< The back-edge Br instruction.
  std::int64_t lo = -1;   ///< Minimum body executions per loop entry (-1 = unannotated).
  std::int64_t hi = -1;   ///< Maximum body executions per loop entry (-1 = unannotated).
  int line = 0;           ///< Source line of the loop statement.
};

struct CompileResult {
  vm::Module module;
  /// functionIndex[i] is the vm function index of program.functions[i].
  std::vector<int> functionIndex;
  /// Every source loop, annotated or not, in every function.
  std::vector<LoopAnnotation> loops;
};

/// Compiles an analyzed MiniC program (run lang::analyze first) into a
/// laid-out VISA module.  Also assigns Symbol::location for every symbol.
[[nodiscard]] CompileResult compile(const lang::Program& program);

/// Convenience: parse + analyze + compile.
[[nodiscard]] CompileResult compileSource(std::string_view source);

}  // namespace cinderella::codegen
