#include "cinderella/ilp/branch_and_bound.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "cinderella/support/checked_math.hpp"
#include "cinderella/support/error.hpp"
#include "cinderella/support/metrics_sink.hpp"

namespace cinderella::ilp {

const char* ilpStatusStr(IlpStatus status) {
  switch (status) {
    case IlpStatus::Optimal:
      return "optimal";
    case IlpStatus::Infeasible:
      return "infeasible";
    case IlpStatus::Unbounded:
      return "unbounded";
    case IlpStatus::Limit:
      return "limit";
    case IlpStatus::Interrupted:
      return "interrupted";
  }
  return "?";
}

namespace {

/// A node of the search tree: extra bound constraints of the form
/// x[var] <= bound or x[var] >= bound layered onto the base problem.
struct BoundCut {
  int var = 0;
  lp::Relation rel = lp::Relation::LessEq;
  double bound = 0.0;
};

struct Node {
  std::vector<BoundCut> cuts;
  /// LP bound inherited from the parent (for best-first pruning).
  double parentBound = 0.0;
  /// Final basis of the parent's relaxation.  The child's rows extend
  /// the parent's rows by one cut, so the basis installs directly and a
  /// few dual pivots repair the violated cut (empty = solve cold).
  lp::Basis parentBasis;
};

/// Index of the variable whose value is farthest from an integer, or
/// nullopt when the point is integral within `tol`.
std::optional<int> mostFractional(const std::vector<double>& values,
                                  double tol) {
  int best = -1;
  double bestDist = tol;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double frac = values[i] - std::floor(values[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > bestDist) {
      bestDist = dist;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

/// Rewrites `work` (a copy of the base problem) to carry exactly `cuts`
/// on top of the base rows, reusing the allocation across nodes.
void applyCuts(lp::Problem* work, std::size_t baseRows,
               const std::vector<BoundCut>& cuts) {
  work->truncateConstraints(baseRows);
  for (const auto& cut : cuts) {
    lp::LinearExpr e;
    e.add(cut.var, 1.0);
    work->addConstraint(std::move(e), cut.rel, cut.bound);
  }
}

/// True when `x` is an integer within `tol`; *out receives the rounding.
bool asInteger(double x, double tol, std::int64_t* out) {
  const double r = std::round(x);
  if (std::abs(x - r) > tol) return false;
  // Beyond 2^63 a double cannot be narrowed; treat as non-integral so the
  // caller keeps the (already inexact) double objective instead.
  if (r < -9.2e18 || r > 9.2e18) return false;
  *out = static_cast<std::int64_t>(r);
  return true;
}

/// Recomputes the incumbent objective exactly from integral coefficients
/// and the rounded incumbent point.  The LP path accumulates the
/// objective in doubles, which silently loses precision past 2^53; IPET
/// objectives (cycle costs x execution counts) are exact integers, so
/// this checked integer pass restores them.  Fills objectiveExact /
/// objectiveIsExact / objectiveSaturated and counts __int128 promotions.
void recomputeExactObjective(const lp::Problem& problem,
                             const IlpOptions& options, IlpSolution* result) {
  const auto& terms = problem.objective().terms();
  std::vector<std::int64_t> coeffs(terms.size());
  std::vector<std::int64_t> values(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!asInteger(terms[i].coeff, options.intTol, &coeffs[i])) return;
    const auto var = static_cast<std::size_t>(terms[i].var);
    if (!asInteger(result->values[var], options.intTol, &values[i])) return;
  }
  std::int64_t constant = 0;
  if (!asInteger(problem.objective().constant(), options.intTol, &constant)) {
    return;
  }

  support::CheckedSum sum = support::accumulateProducts(
      terms.size(), [&](std::size_t i) { return coeffs[i]; },
      [&](std::size_t i) { return values[i]; });
  if (sum.promoted) ++result->stats.checkedPromotions;
  if (!sum.saturated) {
    std::int64_t withConstant = 0;
    if (support::addOverflow(sum.value, constant, &withConstant)) {
      ++result->stats.checkedPromotions;
      const __int128 wide =
          static_cast<__int128>(sum.value) + static_cast<__int128>(constant);
      const bool high = wide > std::numeric_limits<std::int64_t>::max();
      sum.value = high ? std::numeric_limits<std::int64_t>::max()
                       : std::numeric_limits<std::int64_t>::min();
      sum.saturated = true;
    } else {
      sum.value = withConstant;
    }
  }
  result->objectiveExact = sum.value;
  result->objectiveIsExact = true;
  result->objectiveSaturated = sum.saturated;
  if (!sum.saturated) result->objective = static_cast<double>(sum.value);
}

}  // namespace

IlpSolution solve(const lp::Problem& problem, const IlpOptions& options) {
  // Observability is off on the default path: one relaxed atomic load.
  support::MetricsSink* const sink = support::metricsSink();
  const auto solveStart = sink != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};

  IlpSolution result;

  // Reports solver metrics on every exit path.
  struct MetricsReport {
    support::MetricsSink* sink;
    std::chrono::steady_clock::time_point start;
    const IlpSolution& result;
    ~MetricsReport() {
      if (sink == nullptr) return;
      sink->add("ilp.solves", 1);
      sink->observe("ilp.nodes", result.stats.nodesExpanded);
      sink->observe("ilp.pivots", result.stats.totalPivots);
      sink->observe("ilp.micros",
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    }
  } metricsReport{sink, solveStart, result};
  const bool maximize = (problem.sense() == lp::Sense::Maximize);
  const double worst = maximize ? -std::numeric_limits<double>::infinity()
                                : std::numeric_limits<double>::infinity();
  double incumbentObjective = worst;
  std::vector<double> incumbentValues;
  bool haveIncumbent = false;
  bool hitLimit = false;
  bool interrupted = false;

  auto better = [&](double a, double b) { return maximize ? a > b : a < b; };

  std::vector<Node> stack;
  stack.push_back(
      Node{{},
           maximize ? std::numeric_limits<double>::infinity()
                    : -std::numeric_limits<double>::infinity(),
           (options.warmStart && options.rootBasis != nullptr)
               ? *options.rootBasis
               : lp::Basis{}});

  lp::Problem work = problem;
  const std::size_t baseRows = problem.constraints().size();
  bool rootNode = true;
  while (!stack.empty()) {
    if (result.stats.nodesExpanded >= options.maxNodes) {
      hitLimit = true;
      break;
    }
    if (options.interrupt && options.interrupt()) {
      interrupted = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    // Bound: the parent's relaxation bound caps every descendant.
    if (haveIncumbent && !better(node.parentBound, incumbentObjective)) {
      continue;
    }

    applyCuts(&work, baseRows, node.cuts);
    const lp::Basis* const warmBasis =
        (options.warmStart && !node.parentBasis.empty()) ? &node.parentBasis
                                                         : nullptr;
    lp::Basis finalBasis;
    const lp::Solution relax =
        lp::solveWarm(work, options.lpOptions, warmBasis, &finalBasis);
    ++result.stats.nodesExpanded;
    ++result.stats.lpCalls;
    result.stats.totalPivots += relax.pivots;
    result.stats.dualPivots += relax.dualPivots;
    result.stats.installPivots += relax.installPivots;
    result.stats.devexPivots += relax.devexPivots;
    result.stats.presolveRowsRemoved += relax.presolve.rowsRemoved;
    result.stats.presolveColsFixed += relax.presolve.colsFixed;
    result.stats.presolveSubstitutions += relax.presolve.substitutions;
    result.stats.presolveRounds += relax.presolve.propagationRounds;
    if (relax.blandRestart) ++result.stats.blandRestarts;
    if (relax.warmUsed) {
      ++result.stats.warmStarts;
    } else {
      ++result.stats.coldStarts;
    }
    if (relax.warmFailed) ++result.stats.warmFailures;
    if (rootNode && relax.status == lp::SolveStatus::Optimal) {
      // The root relaxation bounds the ILP optimum from the relaxed
      // side; the analyzer's degradation ladder falls back to it when
      // the integer search cannot finish.
      result.relaxationBound = relax.objective;
      result.haveRelaxationBound = true;
      result.rootBasis = finalBasis;
      result.haveRootBasis = true;
    }

    if (relax.status == lp::SolveStatus::IterationLimit) {
      hitLimit = true;
      break;
    }
    if (relax.status == lp::SolveStatus::Unbounded) {
      // An unbounded relaxation at the root means the ILP itself is
      // unbounded (the feasible integral points are a subset, but the
      // recession direction is rational, so integral points also recede).
      if (rootNode) {
        result.status = IlpStatus::Unbounded;
        return result;
      }
      // In a child the direction survives too: still unbounded.
      result.status = IlpStatus::Unbounded;
      return result;
    }
    if (relax.status == lp::SolveStatus::Infeasible) {
      rootNode = false;
      continue;
    }

    const auto fractional = mostFractional(relax.values, options.intTol);
    if (rootNode) {
      result.stats.firstRelaxationIntegral = !fractional.has_value();
      rootNode = false;
    }

    if (haveIncumbent && !better(relax.objective, incumbentObjective)) {
      continue;  // bound: relaxation no better than incumbent
    }

    if (!fractional) {
      // Integral: new incumbent.
      std::vector<double> rounded = relax.values;
      for (double& v : rounded) v = std::round(v);
      incumbentObjective = relax.objective;
      incumbentValues = std::move(rounded);
      haveIncumbent = true;
      continue;
    }

    const int var = *fractional;
    const double value = relax.values[static_cast<std::size_t>(var)];
    Node down;
    down.cuts = node.cuts;
    down.cuts.push_back({var, lp::Relation::LessEq, std::floor(value)});
    down.parentBound = relax.objective;
    Node up;
    up.cuts = std::move(node.cuts);
    up.cuts.push_back({var, lp::Relation::GreaterEq, std::ceil(value)});
    up.parentBound = relax.objective;
    if (options.warmStart) {
      down.parentBasis = finalBasis;
      up.parentBasis = std::move(finalBasis);
    }
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  if (haveIncumbent) {
    result.status = interrupted  ? IlpStatus::Interrupted
                    : hitLimit   ? IlpStatus::Limit
                                 : IlpStatus::Optimal;
    result.objective = incumbentObjective;
    result.values = std::move(incumbentValues);
    recomputeExactObjective(problem, options, &result);
  } else {
    result.status = interrupted  ? IlpStatus::Interrupted
                    : hitLimit   ? IlpStatus::Limit
                                 : IlpStatus::Infeasible;
  }
  return result;
}

}  // namespace cinderella::ilp
