// Pure integer linear programming by branch-and-bound over the LP
// relaxation, as used by the paper's ILP step.
//
// The solver is instrumented: it records how many LP relaxations were
// solved and whether the *first* relaxation already produced an integral
// point.  Section III-D of the paper observes that for IPET constraint
// systems "the first call to the linear program package resulted in an
// integer valued solution"; the stats let benchmarks verify that claim.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cinderella/lp/problem.hpp"
#include "cinderella/lp/simplex.hpp"

namespace cinderella::ilp {

enum class IlpStatus { Optimal, Infeasible, Unbounded, Limit, Interrupted };

[[nodiscard]] const char* ilpStatusStr(IlpStatus status);

struct IlpStats {
  /// Branch-and-bound nodes expanded (subproblems whose relaxation was
  /// solved).  This — never lpCalls — is what IlpOptions::maxNodes
  /// budgets, so node accounting and LP-call accounting cannot drift
  /// apart if a node ever solves more (or fewer) than one LP.
  int nodesExpanded = 0;
  /// Number of LP relaxations solved.  Today every expanded node solves
  /// exactly one relaxation, so nodesExpanded == lpCalls.
  int lpCalls = 0;
  /// True when the root relaxation was already integral (paper's claim).
  bool firstRelaxationIntegral = false;
  /// Total simplex pivots summed over all LP calls.
  int totalPivots = 0;
  /// Incumbent-objective recomputations whose 64-bit fast path
  /// overflowed and were redone in __int128 (see checked_math.hpp).
  int checkedPromotions = 0;
  /// LP calls that fell back to Bland's rule after Dantzig cycled.
  int blandRestarts = 0;
  /// LP calls that ran from a warm basis (parent node or seed), skipping
  /// the cold two-phase solve.
  int warmStarts = 0;
  /// LP calls solved cold (no usable warm basis).
  int coldStarts = 0;
  /// Dual-simplex repair pivots across all warm-started LP calls
  /// (included in totalPivots).
  int dualPivots = 0;
  /// Basis-installation eliminations across all warm-started LP calls
  /// (refactorization work; NOT included in totalPivots).
  int installPivots = 0;
  /// Warm bases that could not be used (the call fell back cold).
  int warmFailures = 0;
  /// Devex reference-framework pivots across all LP calls (included in
  /// totalPivots; the remainder ran under Dantzig or Bland).
  int devexPivots = 0;
  /// Presolve reductions summed over all LP calls: constraint rows
  /// removed, variables fixed at an exact value, and variables
  /// substituted out through singleton equalities.
  int presolveRowsRemoved = 0;
  int presolveColsFixed = 0;
  int presolveSubstitutions = 0;
  /// Presolve fixpoint rounds summed over all LP calls.
  int presolveRounds = 0;
};

struct IlpSolution {
  IlpStatus status = IlpStatus::Infeasible;
  double objective = 0.0;
  /// Integral assignment for every variable (valid when Optimal; also
  /// filled on Limit/Interrupted when an incumbent was found).
  std::vector<double> values;
  /// Incumbent objective recomputed exactly in checked 64-bit integer
  /// arithmetic (promoting to __int128 on overflow), valid when
  /// objectiveIsExact.  `objective` is a double and silently loses
  /// precision past 2^53; this does not.
  std::int64_t objectiveExact = 0;
  /// True when every objective coefficient was integral so the exact
  /// recomputation applies.
  bool objectiveIsExact = false;
  /// The exact objective left 64-bit range; objectiveExact is saturated
  /// to the nearest representable bound.
  bool objectiveSaturated = false;
  /// Root LP-relaxation objective — a sound bound on the ILP optimum
  /// (upper for Maximize, lower for Minimize).  Valid when
  /// haveRelaxationBound; the degradation ladder falls back to it.
  double relaxationBound = 0.0;
  bool haveRelaxationBound = false;
  /// Final basis of the root LP relaxation (valid when haveRootBasis).
  /// The analyzer chains it into the opposite-objective ILP over the
  /// same constraint set: min and max share one basis as each other's
  /// warm-start seed.
  lp::Basis rootBasis;
  bool haveRootBasis = false;
  IlpStats stats;
};

struct IlpOptions {
  /// Maximum branch-and-bound nodes expanded (IlpStats::nodesExpanded)
  /// before giving up with Limit.
  int maxNodes = 100000;
  /// |x - round(x)| below this counts as integral.
  double intTol = 1e-6;
  /// Polled once per node; returning true stops the search with
  /// IlpStatus::Interrupted (incumbent, if any, is preserved).  Used by
  /// the analyzer's deadline so a set never runs past its budget.
  std::function<bool()> interrupt;
  /// Warm-start child nodes from their parent's final basis (a branch
  /// cut is repaired by a few dual pivots instead of a full two-phase
  /// solve).  Results are bit-identical either way; off is for A/B
  /// measurement (CLI --no-warm-start).
  bool warmStart = true;
  /// Optional external seed basis for the root relaxation (e.g. the
  /// shared structural basis of the analyzer's constraint-set family).
  /// Must come from a problem whose rows are a prefix of this one's.
  /// Only consulted when warmStart is on; may be null.
  const lp::Basis* rootBasis = nullptr;
  lp::SimplexOptions lpOptions;
};

/// Solves `problem` with every variable required to be a nonnegative
/// integer.
[[nodiscard]] IlpSolution solve(const lp::Problem& problem,
                                const IlpOptions& options = {});

}  // namespace cinderella::ilp
