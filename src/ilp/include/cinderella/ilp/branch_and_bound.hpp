// Pure integer linear programming by branch-and-bound over the LP
// relaxation, as used by the paper's ILP step.
//
// The solver is instrumented: it records how many LP relaxations were
// solved and whether the *first* relaxation already produced an integral
// point.  Section III-D of the paper observes that for IPET constraint
// systems "the first call to the linear program package resulted in an
// integer valued solution"; the stats let benchmarks verify that claim.
#pragma once

#include <vector>

#include "cinderella/lp/problem.hpp"
#include "cinderella/lp/simplex.hpp"

namespace cinderella::ilp {

enum class IlpStatus { Optimal, Infeasible, Unbounded, Limit };

[[nodiscard]] const char* ilpStatusStr(IlpStatus status);

struct IlpStats {
  /// Branch-and-bound nodes expanded (subproblems whose relaxation was
  /// solved).  This — never lpCalls — is what IlpOptions::maxNodes
  /// budgets, so node accounting and LP-call accounting cannot drift
  /// apart if a node ever solves more (or fewer) than one LP.
  int nodesExpanded = 0;
  /// Number of LP relaxations solved.  Today every expanded node solves
  /// exactly one relaxation, so nodesExpanded == lpCalls.
  int lpCalls = 0;
  /// True when the root relaxation was already integral (paper's claim).
  bool firstRelaxationIntegral = false;
  /// Total simplex pivots summed over all LP calls.
  int totalPivots = 0;
};

struct IlpSolution {
  IlpStatus status = IlpStatus::Infeasible;
  double objective = 0.0;
  /// Integral assignment for every variable (valid when Optimal).
  std::vector<double> values;
  IlpStats stats;
};

struct IlpOptions {
  /// Maximum branch-and-bound nodes expanded (IlpStats::nodesExpanded)
  /// before giving up with Limit.
  int maxNodes = 100000;
  /// |x - round(x)| below this counts as integral.
  double intTol = 1e-6;
  lp::SimplexOptions lpOptions;
};

/// Solves `problem` with every variable required to be a nonnegative
/// integer.
[[nodiscard]] IlpSolution solve(const lp::Problem& problem,
                                const IlpOptions& options = {});

}  // namespace cinderella::ilp
