#include "cinderella/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "cinderella/obs/log.hpp"
#include "cinderella/obs/prometheus.hpp"
#include "cinderella/obs/report.hpp"
#include "cinderella/obs/request_telemetry.hpp"
#include "cinderella/obs/trace.hpp"
#include "cinderella/support/error.hpp"
#include "cinderella/support/io.hpp"

namespace cinderella::serve {

namespace {

/// Stop-flag poll tick for the blocking accept/read loops: short enough
/// that shutdown feels immediate, long enough to cost nothing.
constexpr int kPollMillis = 100;

using Clock = std::chrono::steady_clock;

std::int64_t microsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

ipet::AnalysisServiceOptions serviceOptions(const ServerOptions& options) {
  ipet::AnalysisServiceOptions service;
  service.cache.capacity = options.cacheEntries;
  service.cache.journalPath = options.journalPath;
  service.benchmarkResolver = options.benchmarkResolver;
  return service;
}

using support::io::sendAll;

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(serviceOptions(options_)),
      pool_(options_.poolThreads),
      maxInflight_(options_.maxInflight > 0 ? options_.maxInflight
                                            : 2 * pool_.numThreads()),
      flight_(options_.flightRecorderEntries) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listenFd_, 64) < 0) {
    if (error != nullptr) {
      *error = "bind/listen 127.0.0.1:" + std::to_string(options_.port) +
               ": " + strerror(errno);
    }
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  if (!options_.snapshotPath.empty()) {
    // Crash recovery: restore() keeps every section of the snapshot (and
    // every journaled admission) up to the first damage, so a kill -9 at
    // any byte offset costs at most the torn suffix — never a failed
    // start, never a silently empty cache when a consistent prefix
    // exists.  The cache only ever changes performance.
    restoreReport_ = service_.cache().restore(options_.snapshotPath);
    if (!restoreReport_.complete) snapshotLoadError_ = restoreReport_.detail;
  }

  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listenFd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    connFds_.insert(fd);
    connThreads_.emplace_back([this, fd] { handleConnection(fd); });
  }
}

void Server::handleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  bool discarding = false;  ///< Skipping the rest of an oversized line.
  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = support::io::recvSome(fd, chunk, sizeof chunk);
    if (n <= 0) break;  // Peer closed (or error): connection done.
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t eol = buffer.find('\n');
      if (eol == std::string::npos) {
        buffer.clear();
        continue;
      }
      buffer.erase(0, eol + 1);
      discarding = false;
    }
    if (buffer.size() > options_.maxRequestBytes &&
        buffer.find('\n') == std::string::npos) {
      // The line already exceeds the frame quota with no end in sight:
      // answer a typed error now and skip bytes until the newline, so
      // one oversized frame cannot kill the connection (or the heap).
      rejectedOversize_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_.counter("serve.rejected_oversize").add(1);
      const WireId wireId("srv-" + std::to_string(idSeq_.fetch_add(
                                       1, std::memory_order_relaxed) +
                                   1));
      if (!sendAll(fd, encodeErrorResponse(
                           wireId, "toolarge",
                           "frame exceeds --max-request-bytes (" +
                               std::to_string(options_.maxRequestBytes) +
                               "); the line was discarded") +
                           "\n")) {
        break;
      }
      buffer.clear();
      discarding = true;
      continue;
    }
    std::size_t eol;
    while (open && (eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.rfind("GET ", 0) == 0) {
        // A plain HTTP scraper (Prometheus, curl) on the NDJSON port:
        // answer the one request and close, HTTP/1.0 style.  The rest
        // of the buffer is just request headers — drop it.
        (void)sendAll(fd, handleHttpGet(line));
        open = false;
        continue;
      }
      if (line.size() > options_.maxRequestBytes) {
        // A complete line over quota (the newline arrived in the same
        // chunk that crossed the limit): same typed error, no discard
        // mode needed.
        rejectedOversize_.fetch_add(1, std::memory_order_relaxed);
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics_.counter("serve.rejected_oversize").add(1);
        const WireId wireId("srv-" + std::to_string(idSeq_.fetch_add(
                                         1, std::memory_order_relaxed) +
                                     1));
        if (!sendAll(fd, encodeErrorResponse(
                             wireId, "toolarge",
                             "frame exceeds --max-request-bytes (" +
                                 std::to_string(options_.maxRequestBytes) +
                                 "); the line was discarded") +
                             "\n")) {
          open = false;
        }
        continue;
      }
      bool shutdownAfterReply = false;
      bool drainAfterReply = false;
      bool closeAfterReply = false;
      const std::string response = handleLine(
          line, &shutdownAfterReply, &drainAfterReply, &closeAfterReply);
      if (!sendAll(fd, response + "\n")) open = false;
      if (closeAfterReply) {
        // The line was not JSON: the peer is not a protocol client.
        // The error frame is already in the socket buffer; close so
        // garbage streams cannot pin a connection thread.
        open = false;
      }
      if (drainAfterReply) {
        // The ack is already in the socket buffer; the connection stays
        // open (the client may poll health/stats while we drain).
        beginDrain();
      }
      if (shutdownAfterReply) {
        // The ack is already in the socket buffer; only now wake wait()
        // so the caller's stop() cannot tear the connection down first.
        shutdownRequested_.store(true, std::memory_order_release);
        waitCv_.notify_all();
        open = false;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  connFds_.erase(fd);
}

std::string Server::handleLine(const std::string& line,
                               bool* shutdownAfterReply,
                               bool* drainAfterReply,
                               bool* closeAfterReply) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_.counter("serve.requests").add(1);
  const std::int64_t startUnixMicros = obs::Logger::nowUnixMicros();
  const Clock::time_point start = Clock::now();

  // Decode first — the request id inside the frame names everything
  // that follows (telemetry, log record, flight record, response).
  obs::RequestTelemetry telemetry;
  RequestFrame frame;
  std::string decodeError;
  bool notJson = false;
  bool decoded;
  {
    auto decodeTimer = obs::timeStage(&telemetry, obs::RequestStage::Decode);
    decoded = decodeRequest(line, &frame, &decodeError, &notJson);
  }
  if (closeAfterReply != nullptr) *closeAfterReply = notJson;
  const WireId wireId =
      frame.hasId
          ? (frame.idIsString ? WireId(frame.idText) : WireId(frame.id))
          : WireId("srv-" + std::to_string(
                                idSeq_.fetch_add(1, std::memory_order_relaxed) +
                                1));
  telemetry.setRequestId(wireId.str());
  const bool slowTracing = options_.logger != nullptr &&
                           options_.logger->enabled(obs::LogLevel::Warn) &&
                           options_.slowMillis > 0;
  if (slowTracing) telemetry.enableTracing();

  std::string response;
  AnalyzeOutcome outcome;
  if (!decoded) {
    outcome.errorCode = "parse";
    response = encodeErrorResponse(wireId, "parse", decodeError);
  } else {
    obs::Span span(options_.tracer, "request", "serve");
    span.arg("op", opName(frame.op));
    switch (frame.op) {
      case Op::Ping:
        response = encodePong(wireId);
        break;
      case Op::Stats:
        response = encodeStatsResponse(
            wireId, service_.cache().stats(), service_.cache().boundEntries(),
            service_.cache().basisEntries(), counters(),
            metricsSnapshot().json());
        break;
      case Op::Metrics:
        response = encodeMetricsResponse(wireId, prometheusText());
        break;
      case Op::FlightRecorder:
        response = encodeFlightRecorderResponse(wireId, flight_.json());
        break;
      case Op::Health:
        response = encodeHealthResponse(
            wireId, draining_.load(std::memory_order_acquire),
            inflight_.load(std::memory_order_acquire));
        break;
      case Op::Drain:
        *drainAfterReply = true;
        response = encodeDrainAck(
            wireId, inflight_.load(std::memory_order_acquire));
        break;
      case Op::Shutdown:
        *shutdownAfterReply = true;
        response = encodeShutdownAck(wireId);
        break;
      case Op::Analyze: {
        if (draining_.load(std::memory_order_acquire)) {
          drainRejections_.fetch_add(1, std::memory_order_relaxed);
          errors_.fetch_add(1, std::memory_order_relaxed);
          metrics_.counter("serve.drain_rejections").add(1);
          outcome.errorCode = "draining";
          response = encodeErrorResponse(
              wireId, "draining",
              "daemon is draining; no new analyses accepted");
          break;
        }
        span.arg("label", frame.request.label);
        outcome = handleAnalyze(frame, wireId, &telemetry);
        response = std::move(outcome.response);
        break;
      }
      case Op::Evaluate: {
        outcome = handleEvaluate(frame, wireId);
        response = std::move(outcome.response);
        break;
      }
    }
  }

  const std::int64_t durationMicros = microsSince(start);
  const char* op = decoded ? opName(frame.op) : "?";
  const std::string label =
      !decoded ? std::string()
               : (!frame.request.label.empty() ? frame.request.label
                                               : frame.request.benchmark);
  if (!outcome.errorCode.empty()) {
    if (!decoded) errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_.counter("serve.errors").add(1);
  }
  metrics_.histogram("serve.request_micros").observe(durationMicros);
  metrics_.histogram("serve.response_bytes")
      .observe(static_cast<std::int64_t>(response.size()));
  if (decoded && frame.op == Op::Analyze) {
    if (outcome.errorCode.empty()) {
      metrics_.counter(outcome.cacheHit ? "serve.cache_hits"
                                        : "serve.cache_misses")
          .add(1);
      if (outcome.basisWarmStarted) {
        metrics_.counter("serve.basis_warm_starts").add(1);
      }
    }
    if (outcome.degradedAdmission) {
      metrics_.counter("serve.degraded_admissions").add(1);
    }
    for (int s = 0; s < obs::kRequestStageCount; ++s) {
      const auto stage = static_cast<obs::RequestStage>(s);
      const std::int64_t micros = telemetry.stageMicros(stage);
      if (micros == 0) continue;
      metrics_
          .histogram(std::string("serve.stage.") + obs::requestStageStr(stage) +
                     "_micros")
          .observe(micros);
    }
  }

  {
    RequestRecord record;
    record.requestId = wireId.str();
    record.op = op;
    record.label = label;
    record.startUnixMicros = startUnixMicros;
    record.durationMicros = durationMicros;
    record.ok = outcome.errorCode.empty();
    record.errorCode = outcome.errorCode;
    record.cacheHit = outcome.cacheHit;
    record.basisWarmStarted = outcome.basisWarmStarted;
    record.degradedAdmission = outcome.degradedAdmission;
    record.boundLo = outcome.boundLo;
    record.boundHi = outcome.boundHi;
    record.responseBytes = static_cast<std::int64_t>(response.size());
    for (int s = 0; s < obs::kRequestStageCount; ++s) {
      record.stageMicros[static_cast<std::size_t>(s)] =
          telemetry.stageMicros(static_cast<obs::RequestStage>(s));
    }
    flight_.record(std::move(record));
  }

  if (options_.logger != nullptr) {
    const obs::LogLevel level =
        outcome.errorCode.empty() ? obs::LogLevel::Info : obs::LogLevel::Warn;
    options_.logger->record(level, "request")
        .field("id", wireId.str())
        .field("op", op)
        .field("label", label)
        .field("ok", outcome.errorCode.empty())
        .field("code", outcome.errorCode)
        .field("cacheHit", outcome.cacheHit)
        .field("basisWarmStarted", outcome.basisWarmStarted)
        .field("degradedAdmission", outcome.degradedAdmission)
        .field("boundLo", outcome.boundLo)
        .field("boundHi", outcome.boundHi)
        .field("bytes", static_cast<std::int64_t>(response.size()))
        .field("durationMicros", durationMicros)
        .rawField("telemetry", telemetry.json());
    if (slowTracing && durationMicros >= options_.slowMillis * 1000) {
      options_.logger->record(obs::LogLevel::Warn, "slow-request")
          .field("id", wireId.str())
          .field("op", op)
          .field("durationMicros", durationMicros)
          .field("slowMillis", options_.slowMillis)
          .rawField("telemetry", telemetry.json())
          .rawField("trace", telemetry.traceJson());
    }
  }
  return response;
}

Server::AnalyzeOutcome Server::handleAnalyze(const RequestFrame& frame,
                                             const WireId& wireId,
                                             obs::RequestTelemetry* telemetry) {
  // Overload admission: count this solve in *before* submitting so
  // simultaneous arrivals see each other.  Saturated requests still run,
  // but with a clamped deadline — the degradation ladder then guarantees
  // a sound (if loose) bound inside the clamp instead of queueing
  // unbounded work behind the storm.
  const std::int64_t inflight =
      inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.maxQueuedRequests >= 0 &&
      inflight >= maxInflight_ + options_.maxQueuedRequests) {
    // The bounded queue behind the inflight cap is full: reject outright
    // with a typed, retryable error instead of piling unbounded work
    // (and memory) behind the storm.
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    waitCv_.notify_all();
    rejectedOverload_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_.counter("serve.rejected_overload").add(1);
    AnalyzeOutcome rejected;
    rejected.errorCode = "overloaded";
    rejected.response = encodeErrorResponse(
        wireId, "overloaded",
        "server at capacity (" + std::to_string(inflight) +
            " analyses in flight); retry with backoff");
    return rejected;
  }
  RequestFrame admitted = frame;
  if (options_.maxRequestMemoryBytes > 0 &&
      (admitted.request.control.maxMemoryBytes == 0 ||
       admitted.request.control.maxMemoryBytes >
           options_.maxRequestMemoryBytes)) {
    admitted.request.control.maxMemoryBytes = options_.maxRequestMemoryBytes;
  }
  const bool degradedAdmission = inflight >= maxInflight_;
  if (degradedAdmission) {
    overloadAdmissions_.fetch_add(1, std::memory_order_relaxed);
    const auto clamp = std::chrono::milliseconds(options_.overloadDeadlineMs);
    auto& deadline = admitted.request.control.deadline;
    if (deadline.count() <= 0 || deadline > clamp) deadline = clamp;
  }

  struct Pending {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    AnalyzeOutcome outcome;
  };
  auto pending = std::make_shared<Pending>();
  // `telemetry` lives on the caller's stack; safe to use from the pool
  // because this function blocks on `pending->cv` until the job is done.
  pool_.submit([this, pending, wireId, telemetry,
                admitted = std::move(admitted), degradedAdmission] {
    AnalyzeOutcome outcome;
    outcome.degradedAdmission = degradedAdmission;
    try {
      const ipet::AnalysisResult result =
          service_.analyze(admitted.request, telemetry);
      outcome.cacheHit = result.cacheHit;
      outcome.basisWarmStarted = result.basisWarmStarted;
      outcome.boundLo = result.estimate.bound.lo;
      outcome.boundHi = result.estimate.bound.hi;
      std::string report;
      {
        auto reportTimer =
            obs::timeStage(telemetry, obs::RequestStage::Report);
        obs::ReportOptions reportOptions;
        report = obs::reportJson(result.program, result.estimate, nullptr,
                                 reportOptions);
      }
      auto encodeTimer = obs::timeStage(telemetry, obs::RequestStage::Encode);
      outcome.response = encodeAnalyzeResponse(
          wireId, result, report, degradedAdmission, telemetry->json());
    } catch (const Error& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      outcome.errorCode = "analysis";
      outcome.response = encodeErrorResponse(wireId, "analysis", e.what());
    } catch (const std::exception& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      outcome.errorCode = "internal";
      outcome.response = encodeErrorResponse(wireId, "internal", e.what());
    }
    std::lock_guard<std::mutex> lock(pending->m);
    pending->outcome = std::move(outcome);
    pending->done = true;
    pending->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(pending->m);
  pending->cv.wait(lock, [&] { return pending->done; });
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  waitCv_.notify_all();  // awaitIdle() watches this count reach zero.
  return std::move(pending->outcome);
}

Server::AnalyzeOutcome Server::handleEvaluate(const RequestFrame& frame,
                                              const WireId& wireId) {
  AnalyzeOutcome outcome;
  const std::optional<ipet::Digest> digest =
      ipet::Digest::fromHex(frame.evaluateDigest);
  if (!digest) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    outcome.errorCode = "parse";
    outcome.response = encodeErrorResponse(
        wireId, "parse", "\"digest\" is not 32 hex characters");
    return outcome;
  }
  const std::optional<ipet::CachedFormula> cached =
      service_.cache().lookupFormula(*digest);
  if (!cached) {
    metrics_.counter("serve.evaluate_misses").add(1);
    errors_.fetch_add(1, std::memory_order_relaxed);
    outcome.errorCode = "notfound";
    outcome.response = encodeErrorResponse(
        wireId, "notfound",
        "no cached formula for digest " + frame.evaluateDigest +
            " — re-run the parametric analyze to rebuild it");
    return outcome;
  }
  try {
    const ipet::WcetFormula& formula = cached->formula;
    std::vector<std::int64_t> point(formula.params.size(), 0);
    std::vector<bool> seen(formula.params.size(), false);
    for (const auto& [name, value] : frame.evaluateParams) {
      const std::optional<std::size_t> index = formula.paramIndex(name);
      if (!index) {
        throw AnalysisError("formula declares no parameter '" + name + "'");
      }
      point[*index] = value;
      seen[*index] = true;
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (!seen[i]) {
        throw AnalysisError("missing value for parameter '" +
                            formula.params[i].name + "'");
      }
    }
    const ipet::Interval bound = formula.evaluate(point);
    metrics_.counter("serve.evaluate_hits").add(1);
    outcome.cacheHit = true;
    outcome.boundLo = bound.lo;
    outcome.boundHi = bound.hi;
    outcome.response =
        encodeEvaluateResponse(wireId, bound, frame.evaluateDigest);
  } catch (const Error& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    outcome.errorCode = "analysis";
    outcome.response = encodeErrorResponse(wireId, "analysis", e.what());
  }
  return outcome;
}

std::string Server::handleHttpGet(const std::string& requestLine) {
  // "GET <path> HTTP/1.x" — /metrics and /healthz are served; everything
  // else is a 404 so a misconfigured scraper fails loudly, not silently.
  const std::size_t pathStart = requestLine.find(' ') + 1;
  const std::size_t pathEnd = requestLine.find(' ', pathStart);
  const std::string path =
      pathEnd == std::string::npos
          ? requestLine.substr(pathStart)
          : requestLine.substr(pathStart, pathEnd - pathStart);
  std::string status;
  std::string contentType;
  std::string body;
  if (path == "/metrics") {
    status = "200 OK";
    contentType = "text/plain; version=0.0.4; charset=utf-8";
    body = prometheusText();
  } else if (path == "/healthz") {
    // Readiness for load balancers and the smoke/chaos scripts: 503 the
    // moment a drain begins, so traffic shifts before the exit.
    const bool draining = draining_.load(std::memory_order_acquire);
    status = draining ? "503 Service Unavailable" : "200 OK";
    contentType = "text/plain; charset=utf-8";
    body = draining ? "draining\n" : "ready\n";
  } else {
    status = "404 Not Found";
    contentType = "text/plain; charset=utf-8";
    body = "only /metrics is served here\n";
  }
  metrics_.counter("serve.http_scrapes").add(1);
  return "HTTP/1.0 " + status + "\r\nContent-Type: " + contentType +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

obs::MetricsSnapshot Server::metricsSnapshot() const {
  obs::MetricsSnapshot snapshot = metrics_.snapshot();
  // Fold in the live server and solve-cache counters so one scrape sees
  // the whole daemon; gauges (inflight, cache occupancy) are declared as
  // such in prometheusText().
  const ServeCounters server = counters();
  snapshot.counters["serve.connections"] = server.connections;
  snapshot.counters["serve.overload_admissions"] = server.overloadAdmissions;
  snapshot.counters["serve.inflight"] = server.inflight;
  snapshot.counters["serve.rejected_oversize"] = server.rejectedOversize;
  snapshot.counters["serve.rejected_overload"] = server.rejectedOverload;
  snapshot.counters["serve.drain_rejections"] = server.drainRejections;
  snapshot.counters["serve.draining"] = server.draining ? 1 : 0;
  const ipet::SolveCacheStats cache = service_.cache().stats();
  snapshot.counters["cache.bound_hits"] = cache.boundHits;
  snapshot.counters["cache.bound_misses"] = cache.boundMisses;
  snapshot.counters["cache.basis_hits"] = cache.basisHits;
  snapshot.counters["cache.basis_misses"] = cache.basisMisses;
  snapshot.counters["cache.formula_hits"] = cache.formulaHits;
  snapshot.counters["cache.formula_misses"] = cache.formulaMisses;
  snapshot.counters["cache.insertions"] = cache.insertions;
  snapshot.counters["cache.evictions"] = cache.evictions;
  snapshot.counters["cache.rejected_inserts"] = cache.rejectedInserts;
  snapshot.counters["cache.bound_entries"] =
      static_cast<std::int64_t>(service_.cache().boundEntries());
  snapshot.counters["cache.basis_entries"] =
      static_cast<std::int64_t>(service_.cache().basisEntries());
  snapshot.counters["cache.formula_entries"] =
      static_cast<std::int64_t>(service_.cache().formulaEntries());
  return snapshot;
}

std::string Server::prometheusText() const {
  obs::PrometheusOptions options;
  options.gauges = {"serve.inflight", "serve.draining", "cache.bound_entries",
                    "cache.basis_entries", "cache.formula_entries"};
  return obs::prometheusText(metricsSnapshot(), options);
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  waitCv_.wait(lock, [this] {
    return shutdownRequested_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire) ||
           draining_.load(std::memory_order_acquire);
  });
}

bool Server::shutdownRequested() const {
  return shutdownRequested_.load(std::memory_order_acquire);
}

void Server::beginDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  metrics_.counter("serve.drains").add(1);
  // Shutting the listener down makes pending and future connects fail
  // immediately instead of hanging in the backlog; the accept loop also
  // observes draining_ and exits.  stop() still owns the close().
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  waitCv_.notify_all();
}

bool Server::draining() const {
  return draining_.load(std::memory_order_acquire);
}

bool Server::awaitIdle(std::int64_t timeoutMs) {
  std::unique_lock<std::mutex> lock(mutex_);
  return waitCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs), [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void Server::requestStop() {
  stopping_.store(true, std::memory_order_release);
  shutdownRequested_.store(true, std::memory_order_release);
  waitCv_.notify_all();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
}

void Server::stop() {
  requestStop();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(connThreads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  pool_.wait();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!options_.snapshotPath.empty()) {
    std::string saveError;
    if (!service_.cache().save(options_.snapshotPath, &saveError) &&
        options_.logger != nullptr) {
      options_.logger->record(obs::LogLevel::Error, "snapshot-save-failed")
          .field("path", options_.snapshotPath)
          .field("error", saveError);
    }
  }
  if (!options_.flightDumpPath.empty()) {
    std::ofstream out(options_.flightDumpPath, std::ios::trunc);
    if (out) out << flight_.json() << '\n';
  }
}

ServeCounters Server::counters() const {
  ServeCounters counters;
  counters.connections = connections_.load(std::memory_order_relaxed);
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.overloadAdmissions =
      overloadAdmissions_.load(std::memory_order_relaxed);
  counters.inflight = inflight_.load(std::memory_order_relaxed);
  counters.rejectedOversize = rejectedOversize_.load(std::memory_order_relaxed);
  counters.rejectedOverload = rejectedOverload_.load(std::memory_order_relaxed);
  counters.drainRejections = drainRejections_.load(std::memory_order_relaxed);
  counters.draining = draining_.load(std::memory_order_acquire);
  return counters;
}

}  // namespace cinderella::serve
