#include "cinderella/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <filesystem>

#include "cinderella/obs/report.hpp"
#include "cinderella/obs/trace.hpp"
#include "cinderella/support/error.hpp"

namespace cinderella::serve {

namespace {

/// Stop-flag poll tick for the blocking accept/read loops: short enough
/// that shutdown feels immediate, long enough to cost nothing.
constexpr int kPollMillis = 100;

/// A frame longer than this is garbage, not a request (the largest
/// legitimate payloads — benchmark sources, LP dumps — are well under
/// a megabyte even JSON-escaped).
constexpr std::size_t kMaxFrameBytes = 16u << 20;

ipet::AnalysisServiceOptions serviceOptions(const ServerOptions& options) {
  ipet::AnalysisServiceOptions service;
  service.cache.capacity = options.cacheEntries;
  service.benchmarkResolver = options.benchmarkResolver;
  return service;
}

bool sendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(serviceOptions(options_)),
      pool_(options_.poolThreads),
      maxInflight_(options_.maxInflight > 0 ? options_.maxInflight
                                            : 2 * pool_.numThreads()) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listenFd_, 64) < 0) {
    if (error != nullptr) {
      *error = "bind/listen 127.0.0.1:" + std::to_string(options_.port) +
               ": " + strerror(errno);
    }
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  if (!options_.snapshotPath.empty() &&
      std::filesystem::exists(options_.snapshotPath)) {
    // Best-effort: a corrupt or stale snapshot means a cold cache, never
    // a failed start — the cache only ever changes performance.
    std::string loadError;
    if (!service_.cache().load(options_.snapshotPath, &loadError)) {
      snapshotLoadError_ = loadError;
    }
  }

  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listenFd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    connFds_.insert(fd);
    connThreads_.emplace_back([this, fd] { handleConnection(fd); });
  }
}

void Server::handleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Peer closed (or error): connection done.
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxFrameBytes) {
      (void)sendAll(fd, encodeErrorResponse(0, "parse",
                                            "frame exceeds 16 MiB") +
                            "\n");
      break;
    }
    std::size_t eol;
    while (open && (eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool shutdownAfterReply = false;
      const std::string response = handleLine(line, &shutdownAfterReply);
      if (!sendAll(fd, response + "\n")) open = false;
      if (shutdownAfterReply) {
        // The ack is already in the socket buffer; only now wake wait()
        // so the caller's stop() cannot tear the connection down first.
        shutdownRequested_.store(true, std::memory_order_release);
        waitCv_.notify_all();
        open = false;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  connFds_.erase(fd);
}

std::string Server::handleLine(const std::string& line,
                               bool* shutdownAfterReply) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  RequestFrame frame;
  std::string decodeError;
  if (!decodeRequest(line, &frame, &decodeError)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return encodeErrorResponse(frame.id, "parse", decodeError);
  }
  obs::Span span(options_.tracer, "request", "serve");
  switch (frame.op) {
    case Op::Ping:
      span.arg("op", "ping");
      return encodePong(frame.id);
    case Op::Stats:
      span.arg("op", "stats");
      return encodeStatsResponse(frame.id, service_.cache().stats(),
                                 service_.cache().boundEntries(),
                                 service_.cache().basisEntries(), counters());
    case Op::Shutdown:
      span.arg("op", "shutdown");
      *shutdownAfterReply = true;
      return encodeShutdownAck(frame.id);
    case Op::Analyze:
      break;
  }
  span.arg("op", "analyze").arg("label", frame.request.label);
  return handleAnalyze(frame);
}

std::string Server::handleAnalyze(const RequestFrame& frame) {
  // Overload admission: count this solve in *before* submitting so
  // simultaneous arrivals see each other.  Saturated requests still run,
  // but with a clamped deadline — the degradation ladder then guarantees
  // a sound (if loose) bound inside the clamp instead of queueing
  // unbounded work behind the storm.
  const std::int64_t inflight =
      inflight_.fetch_add(1, std::memory_order_acq_rel);
  RequestFrame admitted = frame;
  const bool degradedAdmission = inflight >= maxInflight_;
  if (degradedAdmission) {
    overloadAdmissions_.fetch_add(1, std::memory_order_relaxed);
    const auto clamp = std::chrono::milliseconds(options_.overloadDeadlineMs);
    auto& deadline = admitted.request.control.deadline;
    if (deadline.count() <= 0 || deadline > clamp) deadline = clamp;
  }

  struct Pending {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::string response;
  };
  auto pending = std::make_shared<Pending>();
  pool_.submit([this, pending, admitted = std::move(admitted),
                degradedAdmission] {
    std::string response;
    try {
      const ipet::AnalysisResult result = service_.analyze(admitted.request);
      obs::ReportOptions reportOptions;
      const std::string report = obs::reportJson(
          result.program, result.estimate, nullptr, reportOptions);
      response = encodeAnalyzeResponse(admitted.id, result, report,
                                       degradedAdmission);
    } catch (const Error& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      response = encodeErrorResponse(admitted.id, "analysis", e.what());
    } catch (const std::exception& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      response = encodeErrorResponse(admitted.id, "internal", e.what());
    }
    std::lock_guard<std::mutex> lock(pending->m);
    pending->response = std::move(response);
    pending->done = true;
    pending->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(pending->m);
  pending->cv.wait(lock, [&] { return pending->done; });
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return pending->response;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  waitCv_.wait(lock, [this] {
    return shutdownRequested_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  });
}

bool Server::shutdownRequested() const {
  return shutdownRequested_.load(std::memory_order_acquire);
}

void Server::requestStop() {
  stopping_.store(true, std::memory_order_release);
  shutdownRequested_.store(true, std::memory_order_release);
  waitCv_.notify_all();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
}

void Server::stop() {
  requestStop();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(connThreads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  pool_.wait();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!options_.snapshotPath.empty()) {
    std::string saveError;
    (void)service_.cache().save(options_.snapshotPath, &saveError);
  }
}

ServeCounters Server::counters() const {
  ServeCounters counters;
  counters.connections = connections_.load(std::memory_order_relaxed);
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.overloadAdmissions =
      overloadAdmissions_.load(std::memory_order_relaxed);
  counters.inflight = inflight_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace cinderella::serve
