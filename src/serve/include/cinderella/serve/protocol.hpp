// The cinderella-serve wire protocol: newline-delimited JSON frames over
// a stream socket, one request object per line in, one response object
// per line out, in request order per connection.
//
// Request frame (all fields but "op" optional; defaults in brackets):
//   {"op":"analyze",            // or "ping" | "stats" | "shutdown"
//    "id":7,                    // echoed verbatim in the response [0]
//    "source":"...",            // MiniC text — or LP format when "lp"
//    "benchmark":"piksrt",      // built-in benchmark instead of source
//    "lp":false,                // "source" is LP-format systems
//    "root":"main",             // root function ["main"/benchmark root]
//    "label":"...",             // report label [benchmark / "<source>"]
//    "constraints":[{"text":"x5 <= 10","scope":""}, ...],
//    "cache":"allmiss",         // analyzer cache mode (allmiss|firstiter|ccg)
//    "cachePolicy":"readwrite", // solve-cache use (readwrite|readonly|bypass)
//    "jobs":1,                  // solve worker threads [1]
//    "deadlineMs":0,            // solve deadline [none]
//    "maxNodes":0,              // branch-and-bound node cap [solver default]
//    "warmStart":true}          // incremental solve engine [on]
//
// Analyze response frame:
//   {"id":7,"ok":true,"protocolVersion":1,
//    "cacheHit":false,          // bound served from the solve cache
//    "basisWarmStarted":false,  // cached structural basis seeded the solve
//    "degradedAdmission":false, // overload clamped the deadline
//    "digest":"<32 hex>","structuralDigest":"<32 hex>",
//    "wallMicros":N,"solveMicros":N,
//    "report":{...}}            // the obs::reportJson document, embedded
//                               // verbatim (schemaVersion inside it)
//
// Error response: {"id":7,"ok":false,"code":"analysis","error":"..."}.
// Codes: "parse" (bad frame), "analysis" (Error from the analyzer),
// "internal" (anything else).  The connection survives request errors;
// only transport-level garbage (a line that is not JSON) also gets an
// error frame, then the connection closes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cinderella/ipet/analysis.hpp"
#include "cinderella/ipet/solve_cache.hpp"
#include "cinderella/obs/json_parse.hpp"

namespace cinderella::serve {

inline constexpr int kProtocolVersion = 1;

enum class Op { Analyze, Ping, Stats, Shutdown };

struct RequestFrame {
  std::int64_t id = 0;
  Op op = Op::Analyze;
  ipet::AnalysisRequest request;
};

/// Server-level counters reported by the "stats" op (alongside the
/// SolveCacheStats).
struct ServeCounters {
  std::int64_t connections = 0;
  std::int64_t requests = 0;
  std::int64_t errors = 0;
  /// Requests admitted under overload with a clamped deadline.
  std::int64_t overloadAdmissions = 0;
  std::int64_t inflight = 0;
};

/// Client-side view of one response line.  `raw` keeps the full parsed
/// frame (the report document is `raw.find("report")`, stats fields live
/// under "cache"/"server"); the named fields are the common envelope.
struct Response {
  std::int64_t id = 0;
  bool ok = false;
  std::string errorCode;
  std::string error;
  bool cacheHit = false;
  bool basisWarmStarted = false;
  bool degradedAdmission = false;
  std::int64_t wallMicros = 0;
  std::int64_t solveMicros = 0;
  std::string digest;
  std::string structuralDigest;
  /// From the embedded report: the bound and its soundness (analyze
  /// responses only).
  std::int64_t boundLo = 0;
  std::int64_t boundHi = 0;
  bool sound = false;
  bool timedOut = false;
  obs::JsonValue raw;
};

// --- Request frames (client encodes, server decodes). ---
[[nodiscard]] std::string encodeRequest(const RequestFrame& frame);
/// Parses one request line.  Returns false with a diagnostic for
/// non-JSON input, an unknown op, or invalid field values; unknown keys
/// are ignored (forward compatibility).
[[nodiscard]] bool decodeRequest(std::string_view line, RequestFrame* out,
                                 std::string* error);

// --- Response frames (server encodes, client decodes). ---
/// `report` must be a complete JSON object (obs::reportJson output); it
/// is embedded verbatim.
[[nodiscard]] std::string encodeAnalyzeResponse(
    std::int64_t id, const ipet::AnalysisResult& result,
    std::string_view report, bool degradedAdmission);
[[nodiscard]] std::string encodeErrorResponse(std::int64_t id,
                                              std::string_view code,
                                              std::string_view message);
[[nodiscard]] std::string encodePong(std::int64_t id);
[[nodiscard]] std::string encodeStatsResponse(
    std::int64_t id, const ipet::SolveCacheStats& cache,
    std::size_t boundEntries, std::size_t basisEntries,
    const ServeCounters& server);
[[nodiscard]] std::string encodeShutdownAck(std::int64_t id);

/// Parses one response line into the envelope + raw document.  Returns
/// nullopt with a diagnostic when the line is not a JSON object.
[[nodiscard]] std::optional<Response> decodeResponse(std::string_view line,
                                                     std::string* error);

}  // namespace cinderella::serve
