// The cinderella-serve wire protocol: newline-delimited JSON frames over
// a stream socket, one request object per line in, one response object
// per line out, in request order per connection.
//
// Request frame (all fields but "op" optional; defaults in brackets):
//   {"op":"analyze",            // or "ping" | "stats" | "metrics"
//                               //    | "flightrecorder" | "health"
//                               //    | "drain" | "shutdown"
//    "id":7,                    // integer or string, echoed verbatim in
//                               // the response; omitted => the server
//                               // assigns "srv-<seq>" and echoes that
//    "source":"...",            // MiniC text — or LP format when "lp"
//    "benchmark":"piksrt",      // built-in benchmark instead of source
//    "lp":false,                // "source" is LP-format systems
//    "root":"main",             // root function ["main"/benchmark root]
//    "label":"...",             // report label [benchmark / "<source>"]
//    "constraints":[{"text":"x5 <= 10","scope":""}, ...],
//    "params":[{"name":"N","lo":1,"hi":8}, ...],  // parametric mode:
//                               // "@N" in the constraints stays symbolic
//                               // and the response carries a "formula"
//    "cache":"allmiss",         // analyzer cache mode (allmiss|firstiter|ccg)
//    "cachePolicy":"readwrite", // solve-cache use (readwrite|readonly|bypass)
//    "jobs":1,                  // solve worker threads [1]
//    "deadlineMs":0,            // solve deadline [none]
//    "maxNodes":0,              // branch-and-bound node cap [solver default]
//    "maxMemoryMb":0,           // per-request solve memory ceiling [none;
//                               // the server may clamp it further]
//    "warmStart":true}          // incremental solve engine [on]
//
// Analyze response frame:
//   {"id":7,"ok":true,"protocolVersion":4,
//    "cacheHit":false,          // bound served from the solve cache
//    "basisWarmStarted":false,  // cached structural basis seeded the solve
//    "degradedAdmission":false, // overload clamped the deadline
//    "digest":"<32 hex>","structuralDigest":"<32 hex>",
//    "wallMicros":N,"solveMicros":N,
//    "telemetry":{"requestId":"...","stages":{"frontend":µs,...}},
//    "formula":{...},           // parametric requests only: the
//                               // WcetFormula JSON document
//    "report":{...}}            // the obs::reportJson document, embedded
//                               // verbatim (schemaVersion inside it)
//
// Evaluate request — prices a cached parametric formula at one concrete
// parameter assignment without ever touching the solver:
//   {"op":"evaluate","id":8,
//    "digest":"<32 hex>",       // the parametric digest an analyze
//                               // response reported for the system
//    "params":{"N":5, ...}}     // one integer per declared parameter
// Response: {"id":8,"ok":true,"protocolVersion":4,
//            "digest":"<32 hex>","bound":{"lo":L,"hi":H}}.
// A digest with no cached formula answers code "notfound" (re-run the
// analyze to rebuild it); an assignment outside the declared box or
// missing a parameter answers code "analysis".
//
// "stats" returns cache/server counters plus a "metrics" object — every
// registered counter and histogram with derived p50/p90/p99.
// "metrics" returns the same registry rendered as Prometheus text
// exposition format 0.0.4 in a "prometheus" string (the daemon also
// answers a raw HTTP "GET /metrics" on the same port for standard
// scrapers).  "flightrecorder" returns the in-memory ring of the last N
// requests with per-stage timings (see flight_recorder.hpp).
//
// "health" reports readiness: {"id":9,"ok":true,"status":"ready",
// "draining":false,"inflight":N} — "draining" once a drain began (the
// daemon also answers "GET /healthz" with 200 when ready, 503 while
// draining).  "drain" starts a graceful shutdown: the listener stops
// accepting, in-flight analyses finish (bounded by the daemon's
// --drain-timeout-ms), the cache snapshot and flight recorder flush,
// and the process exits with a drain-specific code; the ack is
// {"id":10,"ok":true,"draining":true,"inflight":N}.
//
// Error response: {"id":7,"ok":false,"code":"analysis","error":"..."}.
// Codes: "parse" (bad frame), "analysis" (Error from the analyzer),
// "toolarge" (frame exceeded the server's --max-request-bytes; the
// oversized line is discarded and the connection survives),
// "overloaded" (the inflight cap plus bounded queue is full — retry
// with backoff), "draining" (the daemon is draining and accepts no new
// analyses), "notfound" (evaluate digest unknown), "internal" (anything
// else).  The connection survives request errors; only transport-level
// garbage (a line that is not JSON) also gets an error frame, then the
// connection closes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cinderella/ipet/analysis.hpp"
#include "cinderella/ipet/solve_cache.hpp"
#include "cinderella/obs/json_parse.hpp"

namespace cinderella::serve {

inline constexpr int kProtocolVersion = 4;

enum class Op {
  Analyze,
  Evaluate,
  Ping,
  Stats,
  Metrics,
  FlightRecorder,
  Health,
  Drain,
  Shutdown,
};

struct RequestFrame {
  /// Numeric id (the classic form; valid when !idIsString).
  std::int64_t id = 0;
  /// String id, set when the client sent "id":"...".
  std::string idText;
  bool idIsString = false;
  /// False when the frame carried no "id" at all — the server then
  /// assigns a "srv-<seq>" id and echoes it as a string.
  bool hasId = true;
  Op op = Op::Analyze;
  ipet::AnalysisRequest request;
  /// Evaluate op only: the parametric digest (32 hex chars) naming the
  /// cached formula, and the concrete assignment to price it at.
  std::string evaluateDigest;
  std::vector<std::pair<std::string, std::int64_t>> evaluateParams;
};

/// A response id on the wire: echoed as an integer or as a string,
/// matching what the request sent.  Implicitly constructible from both
/// so pre-v2 call sites keep compiling.
struct WireId {
  std::int64_t num = 0;
  std::string text;
  bool isString = false;

  WireId(std::int64_t n) : num(n) {}  // NOLINT(google-explicit-constructor)
  WireId(int n) : num(n) {}           // NOLINT(google-explicit-constructor)
  WireId(std::string t)               // NOLINT(google-explicit-constructor)
      : text(std::move(t)), isString(true) {}
  WireId(std::string_view t)          // NOLINT(google-explicit-constructor)
      : text(t), isString(true) {}
  WireId(const char* t)               // NOLINT(google-explicit-constructor)
      : text(t), isString(true) {}

  /// Canonical string form (numeric ids render as decimal) — what logs,
  /// flight records and telemetry carry.
  [[nodiscard]] std::string str() const {
    return isString ? text : std::to_string(num);
  }
};

/// Server-level counters reported by the "stats" op (alongside the
/// SolveCacheStats).
struct ServeCounters {
  std::int64_t connections = 0;
  std::int64_t requests = 0;
  std::int64_t errors = 0;
  /// Requests admitted under overload with a clamped deadline.
  std::int64_t overloadAdmissions = 0;
  std::int64_t inflight = 0;
  /// Frames rejected for exceeding --max-request-bytes.
  std::int64_t rejectedOversize = 0;
  /// Analyses rejected because the inflight cap + bounded queue was full.
  std::int64_t rejectedOverload = 0;
  /// Analyses rejected because the daemon was draining.
  std::int64_t drainRejections = 0;
  /// True once a drain began (health reports "draining").
  bool draining = false;
};

/// Client-side view of one response line.  `raw` keeps the full parsed
/// frame (the report document is `raw.find("report")`, stats fields live
/// under "cache"/"server"); the named fields are the common envelope.
struct Response {
  std::int64_t id = 0;
  /// The echoed id in canonical string form (numeric ids as decimal —
  /// always set, including for server-generated "srv-<seq>" ids).
  std::string requestId;
  bool ok = false;
  std::string errorCode;
  std::string error;
  bool cacheHit = false;
  bool basisWarmStarted = false;
  bool degradedAdmission = false;
  std::int64_t wallMicros = 0;
  std::int64_t solveMicros = 0;
  std::string digest;
  std::string structuralDigest;
  /// The answered bound: from the embedded report (analyze responses)
  /// or the top-level "bound" object (evaluate responses).
  std::int64_t boundLo = 0;
  std::int64_t boundHi = 0;
  bool sound = false;
  bool timedOut = false;
  obs::JsonValue raw;
  /// The exact response line as received (no trailing newline) — set by
  /// Client::call, empty when decoded from elsewhere.  Lets tools dump
  /// an envelope (metrics text, flight-recorder records) verbatim.
  std::string rawText;
};

/// Wire name of an op ("analyze", "metrics", ...).
[[nodiscard]] const char* opName(Op op);

// --- Request frames (client encodes, server decodes). ---
[[nodiscard]] std::string encodeRequest(const RequestFrame& frame);
/// Parses one request line.  Returns false with a diagnostic for
/// non-JSON input, an unknown op, or invalid field values; unknown keys
/// are ignored (forward compatibility).  `notJson`, when non-null, is
/// set when the line was not a JSON object at all — the server closes
/// such connections after the error frame (transport-level garbage),
/// while request-level failures keep the connection open.
[[nodiscard]] bool decodeRequest(std::string_view line, RequestFrame* out,
                                 std::string* error,
                                 bool* notJson = nullptr);

// --- Response frames (server encodes, client decodes). ---
/// `report` must be a complete JSON object (obs::reportJson output); it
/// is embedded verbatim.  `telemetry`, when non-empty, must likewise be
/// a complete JSON object (obs::RequestTelemetry::json()).
[[nodiscard]] std::string encodeAnalyzeResponse(
    const WireId& id, const ipet::AnalysisResult& result,
    std::string_view report, bool degradedAdmission,
    std::string_view telemetry = {});
/// Evaluate response: the formula's value at the requested point.
/// `digest` is the parametric digest the lookup keyed on (echoed back).
[[nodiscard]] std::string encodeEvaluateResponse(const WireId& id,
                                                 const ipet::Interval& bound,
                                                 std::string_view digest);
[[nodiscard]] std::string encodeErrorResponse(const WireId& id,
                                              std::string_view code,
                                              std::string_view message);
[[nodiscard]] std::string encodePong(const WireId& id);
/// `metricsJson`, when non-empty, must be a complete JSON object (an
/// obs::MetricsSnapshot document) and is embedded as "metrics".
[[nodiscard]] std::string encodeStatsResponse(
    const WireId& id, const ipet::SolveCacheStats& cache,
    std::size_t boundEntries, std::size_t basisEntries,
    const ServeCounters& server, std::string_view metricsJson = {});
/// `prometheus` is the text-exposition body (obs::prometheusText).
[[nodiscard]] std::string encodeMetricsResponse(const WireId& id,
                                                std::string_view prometheus);
/// `flightJson` must be a complete JSON object (FlightRecorder::json()).
[[nodiscard]] std::string encodeFlightRecorderResponse(
    const WireId& id, std::string_view flightJson);
[[nodiscard]] std::string encodeShutdownAck(const WireId& id);
/// Health response: status "ready" or "draining" plus the live inflight
/// count — the NDJSON twin of "GET /healthz".
[[nodiscard]] std::string encodeHealthResponse(const WireId& id,
                                               bool draining,
                                               std::int64_t inflight);
/// Drain ack: the daemon stopped accepting and will exit once in-flight
/// work finishes (or its drain timeout expires).
[[nodiscard]] std::string encodeDrainAck(const WireId& id,
                                         std::int64_t inflight);

/// Parses one response line into the envelope + raw document.  Returns
/// nullopt with a diagnostic when the line is not a JSON object.
[[nodiscard]] std::optional<Response> decodeResponse(std::string_view line,
                                                     std::string* error);

}  // namespace cinderella::serve
