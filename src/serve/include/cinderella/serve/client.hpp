// Blocking client for the cinderella-serve protocol: connect, send one
// frame per call, read back the matching response line.  Used by the
// replay tool, the serve benchmark, the fuzz oracle's cache-equivalence
// check, and the protocol tests — anything that talks to a daemon
// in-process or across processes.
#pragma once

#include <optional>
#include <string>

#include "cinderella/serve/protocol.hpp"

namespace cinderella::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`.  Returns false with a diagnostic on
  /// failure; the client may be re-connected after close().
  [[nodiscard]] bool connect(int port, std::string* error);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends `frame` and blocks for one response line.  Returns nullopt
  /// with a diagnostic on a transport failure (including the peer
  /// closing mid-request) — protocol-level errors come back as a
  /// Response with ok == false instead.
  [[nodiscard]] std::optional<Response> call(const RequestFrame& frame,
                                             std::string* error);

  /// Convenience wrappers around call().
  [[nodiscard]] std::optional<Response> analyze(
      const ipet::AnalysisRequest& request, std::string* error);
  /// Prices a cached parametric formula: `digest` is the parametric
  /// digest an analyze response reported, `params` the concrete value
  /// of every declared parameter.
  [[nodiscard]] std::optional<Response> evaluate(
      std::string_view digest,
      const std::vector<std::pair<std::string, std::int64_t>>& params,
      std::string* error);
  [[nodiscard]] std::optional<Response> ping(std::string* error);
  [[nodiscard]] std::optional<Response> stats(std::string* error);
  [[nodiscard]] std::optional<Response> metrics(std::string* error);
  [[nodiscard]] std::optional<Response> flightrecorder(std::string* error);
  [[nodiscard]] std::optional<Response> shutdown(std::string* error);

  void close();

 private:
  [[nodiscard]] bool readLine(std::string* line, std::string* error);

  int fd_ = -1;
  std::int64_t nextId_ = 1;
  std::string buffer_;
};

}  // namespace cinderella::serve
