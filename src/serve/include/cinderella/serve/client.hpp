// Blocking client for the cinderella-serve protocol: connect, send one
// frame per call, read back the matching response line.  Used by the
// replay tool, the serve benchmark, the fuzz oracle's cache-equivalence
// check, and the protocol tests — anything that talks to a daemon
// in-process or across processes.
//
// Resilience: an optional RetryPolicy makes call() survive transport
// loss (daemon restart, dropped connection) and typed "overloaded"
// rejections by reconnecting and retrying with exponential backoff plus
// deterministic jitter.  This is safe because analyze/evaluate are
// idempotent — results are content-addressed by request digest, so a
// retry can only re-serve the same bound.  Shutdown and drain frames
// are never retried (a second delivery would not be idempotent against
// a *different* daemon instance that reused the port).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cinderella/serve/protocol.hpp"

namespace cinderella::obs {
class Logger;
}  // namespace cinderella::obs

namespace cinderella::serve {

/// Deadline-aware retry policy for Client::call.
struct RetryPolicy {
  /// Total attempts, the first try included; 1 = no retries (default,
  /// the pre-v4 behavior).
  int maxAttempts = 1;
  /// Backoff before the first retry; doubles (backoffMultiplier) per
  /// retry up to maxBackoffMs.
  std::int64_t initialBackoffMs = 25;
  double backoffMultiplier = 2.0;
  std::int64_t maxBackoffMs = 2000;
  /// Fraction of the backoff perturbed per retry (0.2 = ±20%), from a
  /// deterministic splitmix64 stream seeded by jitterSeed — reproducible
  /// in tests, decorrelated across clients with distinct seeds.
  double jitter = 0.2;
  std::uint64_t jitterSeed = 0x9e3779b97f4a7c15ull;
  /// Overall wall-clock budget across attempts and backoff sleeps;
  /// 0 = none.  A retry that cannot finish its sleep inside the budget
  /// is not started.
  std::int64_t totalDeadlineMs = 0;
  /// Also retry typed "overloaded" rejections (the server's bounded
  /// queue was full), not just transport loss.
  bool retryOverloaded = true;
};

/// What the retry machinery did over the client's lifetime.
struct RetryStats {
  std::int64_t retries = 0;     ///< Attempts beyond the first.
  std::int64_t reconnects = 0;  ///< Successful re-connects after loss.
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`.  Returns false with a diagnostic on
  /// failure; the client may be re-connected after close().
  [[nodiscard]] bool connect(int port, std::string* error);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Arms retries for subsequent call()s (see RetryPolicy).
  void setRetryPolicy(RetryPolicy policy) { policy_ = policy; }

  /// Optional log sink: each retry emits a "client-retry" record
  /// carrying the request id, attempt number and backoff.  Must outlive
  /// the client.
  void setLogger(obs::Logger* logger) { logger_ = logger; }

  [[nodiscard]] const RetryStats& retryStats() const { return retryStats_; }

  /// Sends `frame` and blocks for one response line, retrying per the
  /// policy.  Returns nullopt with a diagnostic on a transport failure
  /// that survived every retry — protocol-level errors come back as a
  /// Response with ok == false instead.
  [[nodiscard]] std::optional<Response> call(const RequestFrame& frame,
                                             std::string* error);

  /// Convenience wrappers around call().
  [[nodiscard]] std::optional<Response> analyze(
      const ipet::AnalysisRequest& request, std::string* error);
  /// Prices a cached parametric formula: `digest` is the parametric
  /// digest an analyze response reported, `params` the concrete value
  /// of every declared parameter.
  [[nodiscard]] std::optional<Response> evaluate(
      std::string_view digest,
      const std::vector<std::pair<std::string, std::int64_t>>& params,
      std::string* error);
  [[nodiscard]] std::optional<Response> ping(std::string* error);
  [[nodiscard]] std::optional<Response> stats(std::string* error);
  [[nodiscard]] std::optional<Response> metrics(std::string* error);
  [[nodiscard]] std::optional<Response> flightrecorder(std::string* error);
  [[nodiscard]] std::optional<Response> health(std::string* error);
  [[nodiscard]] std::optional<Response> drain(std::string* error);
  [[nodiscard]] std::optional<Response> shutdown(std::string* error);

  void close();

 private:
  [[nodiscard]] std::optional<Response> callOnce(const RequestFrame& frame,
                                                 std::string* error);
  [[nodiscard]] bool readLine(std::string* line, std::string* error);
  /// Next multiplier in [1-jitter, 1+jitter] from the deterministic
  /// stream.
  [[nodiscard]] double jitterFactor();

  int fd_ = -1;
  int port_ = 0;  ///< Last successful connect target, for reconnects.
  std::int64_t nextId_ = 1;
  std::string buffer_;
  RetryPolicy policy_;
  RetryStats retryStats_;
  std::uint64_t jitterState_ = 0;
  bool jitterSeeded_ = false;
  obs::Logger* logger_ = nullptr;
};

}  // namespace cinderella::serve
