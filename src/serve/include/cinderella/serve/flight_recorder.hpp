// Flight recorder: the last N served requests, always on.
//
// A fixed-size ring of RequestRecords answers "what was the daemon doing
// just now?" after a crash, a latency spike, or a confusing bound — the
// `flightrecorder` op dumps it over the protocol, the daemon dumps it to
// a file on shutdown and from its crash handlers.  Recording one request
// is one stripe mutex + a struct move, cheap enough to leave enabled in
// production serving.
//
// The ring is lock-striped: the global sequence counter assigns each
// record a slot (seq % stripes, then round-robin within the stripe), so
// concurrent connection threads almost never contend on the same mutex.
// A snapshot locks the stripes one at a time and re-sorts by sequence
// number; it is a point-in-time-ish view — records landing mid-snapshot
// may or may not appear, which is fine for a diagnostic dump.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cinderella/obs/request_telemetry.hpp"

namespace cinderella::obs {
class JsonWriter;
}  // namespace cinderella::obs

namespace cinderella::serve {

/// Everything worth keeping about one served request, sized for a ring
/// that holds hundreds of these.
struct RequestRecord {
  std::uint64_t seq = 0;  ///< Assigned by the recorder; dump order.
  std::string requestId;
  std::string op;
  std::string label;
  std::int64_t startUnixMicros = 0;
  std::int64_t durationMicros = 0;
  bool ok = false;
  bool cacheHit = false;
  bool basisWarmStarted = false;
  bool degradedAdmission = false;
  std::string errorCode;  ///< Empty when ok.
  std::int64_t boundLo = 0;
  std::int64_t boundHi = 0;
  std::int64_t responseBytes = 0;
  /// Per-stage wall µs, indexed by obs::RequestStage.
  std::array<std::int64_t, obs::kRequestStageCount> stageMicros{};

  void toJson(obs::JsonWriter* w) const;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a multiple of the stripe count; 0 is
  /// clamped to one record per stripe.
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps `record.seq` and stores it, overwriting the oldest record in
  /// its stripe once the ring is full.
  void record(RequestRecord record);

  /// Total requests ever recorded (not the ring occupancy).
  [[nodiscard]] std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const {
    return perStripe_ * kStripes;
  }

  /// The ring's current contents, oldest first.
  [[nodiscard]] std::vector<RequestRecord> snapshot() const;

  /// {"capacity":N,"recorded":M,"records":[...]} — the dump format used
  /// by the flightrecorder op and the shutdown/crash file dumps.
  [[nodiscard]] std::string json() const;

 private:
  static constexpr std::size_t kStripes = 8;

  struct Stripe {
    mutable std::mutex mutex;
    std::vector<RequestRecord> ring;  ///< Slot valid when seq > 0.
  };

  std::size_t perStripe_;
  std::atomic<std::uint64_t> seq_{0};
  std::array<Stripe, kStripes> stripes_;
};

}  // namespace cinderella::serve
