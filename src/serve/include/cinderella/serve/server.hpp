// cinderella-serve: the analyzer as a persistent daemon.
//
// One Server owns one AnalysisService (and therefore one persistent
// content-addressed SolveCache) plus one work-stealing thread pool, and
// listens on a loopback TCP socket speaking the newline-delimited JSON
// protocol of protocol.hpp.  Each connection gets a reader thread that
// decodes frames and answers them in order; the solves themselves are
// multiplexed onto the shared pool, so N cheap connections do not need N
// solver threads and one expensive request cannot starve the listener.
//
// Overload is admission-controlled through the degradation ladder
// rather than queued: when more than `maxInflight` solves are already
// running, an arriving request is still served, but with its deadline
// clamped to `overloadDeadlineMs` — the PR-4 ladder then degrades
// whatever cannot finish in time to a sound relaxation/structural
// bound, and the response carries "degradedAdmission":true.  Cache hits
// are unaffected (they skip the solve entirely), which is what makes a
// warmed-up daemon robust to repeat-heavy request storms.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cinderella/ipet/analysis.hpp"
#include "cinderella/obs/metrics.hpp"
#include "cinderella/serve/flight_recorder.hpp"
#include "cinderella/serve/protocol.hpp"
#include "cinderella/support/thread_pool.hpp"

namespace cinderella::obs {
class Logger;
class RequestTelemetry;
class Tracer;
}  // namespace cinderella::obs

namespace cinderella::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = pick an ephemeral port (see port()).
  int port = 0;
  /// Solver pool workers; 0 = one per hardware thread.
  int poolThreads = 0;
  /// Solves allowed to run concurrently before overload admission kicks
  /// in; 0 = twice the pool size.
  int maxInflight = 0;
  /// Deadline clamp for requests admitted under overload.
  std::int64_t overloadDeadlineMs = 50;
  /// Solve-cache capacity (entries per store); 0 disables caching.
  std::size_t cacheEntries = 1024;
  /// When non-empty: restore the cache from this snapshot on start()
  /// (best-effort; see snapshotLoadError()) and write it back on stop().
  std::string snapshotPath;
  /// When non-empty: journal every cache admission here (fsync'd), so a
  /// kill -9 between snapshots loses nothing; restored on start() on
  /// top of the snapshot, reset by every successful snapshot save.
  std::string journalPath;
  /// Per-connection frame-size limit: a request line longer than this
  /// is answered with a typed "toolarge" error and discarded — the
  /// connection survives.
  std::size_t maxRequestBytes = 16u << 20;
  /// Analyses allowed to wait beyond maxInflight before new arrivals
  /// are rejected outright with "overloaded"; -1 = unbounded (degraded
  /// admission only, the pre-quota behavior).
  int maxQueuedRequests = -1;
  /// Per-request solve memory ceiling (bytes) clamped onto every
  /// admitted analyze (SolveControl::maxMemoryBytes); 0 = none.  A
  /// request already asking for less keeps its own ceiling.
  std::size_t maxRequestMemoryBytes = 0;
  /// Benchmark-name resolution for {"benchmark":...} requests.
  ipet::ProgramResolver benchmarkResolver;
  /// Optional tracer: one "request" span per frame served.
  obs::Tracer* tracer = nullptr;
  /// Optional structured log sink: one "request" NDJSON record per frame
  /// (cinderella-serve --log-out).  Must outlive the server.
  obs::Logger* logger = nullptr;
  /// Requests slower than this additionally emit a "slow-request" record
  /// embedding the request's span tree; 0 disables.  Per-request tracing
  /// is only armed when both a logger and a slow threshold are set, so
  /// the fast path never pays for span bookkeeping.
  std::int64_t slowMillis = 0;
  /// Flight-recorder ring capacity (requests); always on.
  std::size_t flightRecorderEntries = 256;
  /// When non-empty: stop() writes FlightRecorder::json() here, so a
  /// shutdown always leaves a post-mortem trail next to the snapshot.
  std::string flightDumpPath;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Stops and joins everything (equivalent to stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1, starts the accept loop, loads the snapshot if
  /// configured.  Returns false with a diagnostic when the socket
  /// cannot be set up.
  [[nodiscard]] bool start(std::string* error);

  /// The bound port (after start()); useful with options.port == 0.
  [[nodiscard]] int port() const { return port_; }

  /// Blocks until stop() is called, a client sends {"op":"shutdown"},
  /// or a drain begins.  Returns without stopping — the caller decides
  /// to stop() (typically after awaitIdle() when draining()).
  void wait();

  /// True once a client requested shutdown (or stop() began).
  [[nodiscard]] bool shutdownRequested() const;

  /// Begins a graceful drain: the listener stops accepting connections,
  /// new analyses are rejected with a typed "draining" error, health
  /// flips to "draining", and wait() wakes.  In-flight analyses keep
  /// running — awaitIdle() then stop() complete the shutdown.
  /// Idempotent; triggered by the "drain" op and by SIGTERM/SIGINT in
  /// the daemon driver.
  void beginDrain();

  /// True once a drain began.
  [[nodiscard]] bool draining() const;

  /// Blocks until no analyses are in flight, up to `timeoutMs`.
  /// Returns true when idle (a clean drain), false on timeout.
  [[nodiscard]] bool awaitIdle(std::int64_t timeoutMs);

  /// Stops accepting, closes every connection, joins all threads, and
  /// writes the cache snapshot if configured.  Idempotent.
  void stop();

  [[nodiscard]] ServeCounters counters() const;
  [[nodiscard]] ipet::AnalysisService& service() { return service_; }
  /// The serving metrics registry (counters + latency histograms).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// The always-on ring of the last N served requests.
  [[nodiscard]] const FlightRecorder& flightRecorder() const {
    return flight_;
  }
  /// Registry snapshot merged with the live server/cache counters —
  /// what the stats op, the metrics op and the HTTP scrape all render.
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const;
  /// The merged snapshot as Prometheus text exposition format 0.0.4.
  [[nodiscard]] std::string prometheusText() const;

  /// Diagnostic from a damaged best-effort snapshot restore in start()
  /// (empty when none was configured, the files were absent, or they
  /// recovered cleanly); the server starts with whatever consistent
  /// prefix was recovered either way.
  [[nodiscard]] const std::string& snapshotLoadError() const {
    return snapshotLoadError_;
  }

  /// What start()'s snapshot + journal recovery restored.
  [[nodiscard]] const ipet::SnapshotRestoreReport& restoreReport() const {
    return restoreReport_;
  }

 private:
  /// What handleAnalyze hands back up for logging / metrics / the
  /// flight record, alongside the encoded response line.
  struct AnalyzeOutcome {
    std::string response;
    std::string errorCode;  ///< Empty on success.
    bool degradedAdmission = false;
    bool cacheHit = false;
    bool basisWarmStarted = false;
    std::int64_t boundLo = 0;
    std::int64_t boundHi = 0;
  };

  void acceptLoop();
  void handleConnection(int fd);
  /// Decodes and serves one frame; returns the response line (without
  /// the trailing newline).  Sets `*shutdownAfterReply` for a shutdown
  /// frame and `*drainAfterReply` for a drain frame — the connection
  /// loop acts only after the ack is sent, so the client always sees it.
  /// Sets `*closeAfterReply` when the line was not JSON at all: the
  /// peer is not speaking the protocol, so the connection closes after
  /// the error frame (request-level errors keep it open).
  [[nodiscard]] std::string handleLine(const std::string& line,
                                       bool* shutdownAfterReply,
                                       bool* drainAfterReply,
                                       bool* closeAfterReply);
  [[nodiscard]] AnalyzeOutcome handleAnalyze(const RequestFrame& frame,
                                             const WireId& wireId,
                                             obs::RequestTelemetry* telemetry);
  /// Prices a cached parametric formula at one concrete assignment —
  /// pure cache arithmetic, so it runs inline on the connection thread
  /// and never occupies a solver-pool slot.
  [[nodiscard]] AnalyzeOutcome handleEvaluate(const RequestFrame& frame,
                                              const WireId& wireId);
  /// Serves a raw "GET <path> HTTP/1.x" request line (the Prometheus
  /// scrape path); returns the complete HTTP response.
  [[nodiscard]] std::string handleHttpGet(const std::string& requestLine);
  void requestStop();

  ServerOptions options_;
  ipet::AnalysisService service_;
  support::ThreadPool pool_;
  int maxInflight_;
  obs::MetricsRegistry metrics_;
  FlightRecorder flight_;
  std::atomic<std::uint64_t> idSeq_{0};  ///< For server-generated ids.

  int listenFd_ = -1;
  int port_ = 0;
  std::thread acceptThread_;
  std::string snapshotLoadError_;
  ipet::SnapshotRestoreReport restoreReport_;

  mutable std::mutex mutex_;  ///< Guards connThreads_/connFds_.
  std::vector<std::thread> connThreads_;
  std::set<int> connFds_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdownRequested_{false};
  bool stopped_ = false;  ///< stop() ran to completion (guarded by mutex_).
  std::condition_variable waitCv_;

  std::atomic<std::int64_t> connections_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> overloadAdmissions_{0};
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<std::int64_t> rejectedOversize_{0};
  std::atomic<std::int64_t> rejectedOverload_{0};
  std::atomic<std::int64_t> drainRejections_{0};
};

}  // namespace cinderella::serve
