#include "cinderella/serve/flight_recorder.hpp"

#include <algorithm>

#include "cinderella/obs/json.hpp"

namespace cinderella::serve {

void RequestRecord::toJson(obs::JsonWriter* w) const {
  w->beginObject()
      .key("seq")
      .value(static_cast<std::int64_t>(seq))
      .key("id")
      .value(requestId)
      .key("op")
      .value(op);
  if (!label.empty()) w->key("label").value(label);
  w->key("startUnixMicros")
      .value(startUnixMicros)
      .key("durationMicros")
      .value(durationMicros)
      .key("ok")
      .value(ok);
  if (!ok) w->key("code").value(errorCode);
  if (op == "analyze" && ok) {
    w->key("cacheHit")
        .value(cacheHit)
        .key("basisWarmStarted")
        .value(basisWarmStarted)
        .key("degradedAdmission")
        .value(degradedAdmission)
        .key("bound")
        .beginObject()
        .key("lo")
        .value(boundLo)
        .key("hi")
        .value(boundHi)
        .endObject();
  }
  w->key("responseBytes").value(responseBytes);
  w->key("stages").beginObject();
  for (int s = 0; s < obs::kRequestStageCount; ++s) {
    const std::int64_t micros = stageMicros[static_cast<std::size_t>(s)];
    if (micros == 0) continue;
    w->key(obs::requestStageStr(static_cast<obs::RequestStage>(s)))
        .value(micros);
  }
  w->endObject();
  w->endObject();
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : perStripe_(std::max<std::size_t>(1, (capacity + kStripes - 1) /
                                             kStripes)) {
  for (Stripe& stripe : stripes_) stripe.ring.resize(perStripe_);
}

void FlightRecorder::record(RequestRecord record) {
  // Sequence numbers start at 1 so a default-constructed slot (seq 0)
  // reads as empty.  The slot is a pure function of the sequence number,
  // so two threads never write the same slot until the ring has wrapped
  // a full stripe — and then the older record was due for eviction
  // anyway.
  const std::uint64_t seq =
      seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  Stripe& stripe = stripes_[(seq - 1) % kStripes];
  const std::size_t slot = ((seq - 1) / kStripes) % perStripe_;
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.ring[slot] = std::move(record);
}

std::vector<RequestRecord> FlightRecorder::snapshot() const {
  std::vector<RequestRecord> out;
  out.reserve(capacity());
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const RequestRecord& record : stripe.ring) {
      if (record.seq > 0) out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::json() const {
  const std::vector<RequestRecord> records = snapshot();
  obs::JsonWriter w;
  w.beginObject()
      .key("capacity")
      .value(static_cast<std::int64_t>(capacity()))
      .key("recorded")
      .value(static_cast<std::int64_t>(recorded()))
      .key("records")
      .beginArray();
  for (const RequestRecord& record : records) record.toJson(&w);
  w.endArray().endObject();
  return w.str();
}

}  // namespace cinderella::serve
