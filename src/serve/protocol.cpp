#include "cinderella/serve/protocol.hpp"

#include "cinderella/obs/json.hpp"

namespace cinderella::serve {

namespace {

const char* opStr(Op op) {
  switch (op) {
    case Op::Analyze:
      return "analyze";
    case Op::Evaluate:
      return "evaluate";
    case Op::Ping:
      return "ping";
    case Op::Stats:
      return "stats";
    case Op::Metrics:
      return "metrics";
    case Op::FlightRecorder:
      return "flightrecorder";
    case Op::Health:
      return "health";
    case Op::Drain:
      return "drain";
    case Op::Shutdown:
      return "shutdown";
  }
  return "?";
}

std::optional<Op> parseOp(std::string_view text) {
  if (text == "analyze") return Op::Analyze;
  if (text == "evaluate") return Op::Evaluate;
  if (text == "ping") return Op::Ping;
  if (text == "stats") return Op::Stats;
  if (text == "metrics") return Op::Metrics;
  if (text == "flightrecorder") return Op::FlightRecorder;
  if (text == "health") return Op::Health;
  if (text == "drain") return Op::Drain;
  if (text == "shutdown") return Op::Shutdown;
  return std::nullopt;
}

/// String ids must be short and printable-ASCII: they travel into logs,
/// flight records and Prometheus-adjacent places where control bytes and
/// multi-KB blobs would be hostile.
bool validStringId(std::string_view text) {
  if (text.empty() || text.size() > 128) return false;
  for (const char c : text) {
    if (c < 0x20 || c == 0x7f) return false;
  }
  return true;
}

void beginResponse(obs::JsonWriter* w, const WireId& id, bool ok) {
  w->beginObject().key("id");
  if (id.isString) {
    w->value(id.text);
  } else {
    w->value(id.num);
  }
  w->key("ok").value(ok).key("protocolVersion").value(kProtocolVersion);
}

}  // namespace

const char* opName(Op op) { return opStr(op); }

std::string encodeRequest(const RequestFrame& frame) {
  obs::JsonWriter w;
  w.beginObject().key("op").value(opStr(frame.op));
  if (frame.hasId) {
    w.key("id");
    if (frame.idIsString) {
      w.value(frame.idText);
    } else {
      w.value(frame.id);
    }
  }
  if (frame.op == Op::Analyze) {
    const ipet::AnalysisRequest& r = frame.request;
    if (!r.label.empty()) w.key("label").value(r.label);
    if (!r.benchmark.empty()) {
      w.key("benchmark").value(r.benchmark);
    } else {
      w.key("source").value(r.source);
    }
    if (r.lpInput) w.key("lp").value(true);
    if (!r.root.empty()) w.key("root").value(r.root);
    if (!r.constraints.empty()) {
      w.key("constraints").beginArray();
      for (const ipet::RequestConstraint& c : r.constraints) {
        w.beginObject().key("text").value(c.text);
        if (!c.scope.empty()) w.key("scope").value(c.scope);
        w.endObject();
      }
      w.endArray();
    }
    if (!r.parameters.empty()) {
      w.key("params").beginArray();
      for (const ipet::ParamDecl& p : r.parameters) {
        w.beginObject()
            .key("name")
            .value(p.name)
            .key("lo")
            .value(p.lo)
            .key("hi")
            .value(p.hi)
            .endObject();
      }
      w.endArray();
    }
    w.key("cache").value(ipet::cacheModeStr(r.cacheMode));
    w.key("cachePolicy").value(ipet::cachePolicyStr(r.cachePolicy));
    w.key("jobs").value(r.control.threads);
    if (r.control.deadline.count() > 0) {
      w.key("deadlineMs")
          .value(static_cast<std::int64_t>(r.control.deadline.count()));
    }
    if (r.control.maxNodes > 0) w.key("maxNodes").value(r.control.maxNodes);
    if (r.control.maxMemoryBytes > 0) {
      w.key("maxMemoryMb")
          .value(static_cast<std::int64_t>(r.control.maxMemoryBytes >> 20));
    }
    w.key("warmStart").value(r.control.warmStart);
  }
  if (frame.op == Op::Evaluate) {
    w.key("digest").value(frame.evaluateDigest);
    w.key("params").beginObject();
    for (const auto& [name, value] : frame.evaluateParams) {
      w.key(name).value(value);
    }
    w.endObject();
  }
  w.endObject();
  return w.str();
}

bool decodeRequest(std::string_view line, RequestFrame* out,
                   std::string* error, bool* notJson) {
  if (notJson != nullptr) *notJson = false;
  std::string parseError;
  std::optional<obs::JsonValue> doc = obs::jsonParse(line, &parseError);
  if (!doc) {
    if (error != nullptr) *error = "not a JSON frame (" + parseError + ")";
    if (notJson != nullptr) *notJson = true;
    return false;
  }
  if (!doc->isObject()) {
    if (error != nullptr) *error = "frame must be a JSON object";
    if (notJson != nullptr) *notJson = true;
    return false;
  }

  const std::optional<Op> op = parseOp(doc->stringOr("op", "analyze"));
  if (!op) {
    if (error != nullptr) {
      *error = "unknown op '" + doc->stringOr("op", "") + "'";
    }
    return false;
  }
  out->op = *op;
  if (const obs::JsonValue* id = doc->find("id")) {
    if (id->isNumber() && id->isInteger) {
      out->id = id->intValue;
      out->idIsString = false;
      out->hasId = true;
    } else if (id->isString() && validStringId(id->stringValue)) {
      out->idText = id->stringValue;
      out->idIsString = true;
      out->hasId = true;
    } else {
      if (error != nullptr) {
        *error = "\"id\" must be an integer or a short printable string";
      }
      return false;
    }
  } else {
    out->hasId = false;
  }
  if (out->op == Op::Evaluate) {
    out->evaluateDigest = doc->stringOr("digest", "");
    if (out->evaluateDigest.size() != 32 ||
        out->evaluateDigest.find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
      if (error != nullptr) {
        *error = "evaluate needs a 32-hex-char \"digest\"";
      }
      return false;
    }
    const obs::JsonValue* params = doc->find("params");
    if (params == nullptr || !params->isObject() || params->members.empty()) {
      if (error != nullptr) {
        *error = "evaluate needs a non-empty \"params\" object";
      }
      return false;
    }
    for (const auto& [name, value] : params->members) {
      if (!value.isNumber() || !value.isInteger) {
        if (error != nullptr) {
          *error = "evaluate parameter \"" + name + "\" must be an integer";
        }
        return false;
      }
      out->evaluateParams.emplace_back(name, value.intValue);
    }
    return true;
  }
  if (out->op != Op::Analyze) return true;

  ipet::AnalysisRequest& r = out->request;
  r.label = doc->stringOr("label", "");
  r.source = doc->stringOr("source", "");
  r.benchmark = doc->stringOr("benchmark", "");
  r.lpInput = doc->boolOr("lp", false);
  r.root = doc->stringOr("root", "");
  if (const obs::JsonValue* constraints = doc->find("constraints")) {
    if (!constraints->isArray()) {
      if (error != nullptr) *error = "\"constraints\" must be an array";
      return false;
    }
    for (const obs::JsonValue& item : constraints->items) {
      ipet::RequestConstraint c;
      if (item.isString()) {
        c.text = item.stringValue;
      } else if (item.isObject()) {
        c.text = item.stringOr("text", "");
        c.scope = item.stringOr("scope", "");
      }
      if (c.text.empty()) {
        if (error != nullptr) {
          *error = "constraint entries need a non-empty \"text\"";
        }
        return false;
      }
      r.constraints.push_back(std::move(c));
    }
  }
  if (const obs::JsonValue* params = doc->find("params")) {
    if (!params->isArray()) {
      if (error != nullptr) *error = "\"params\" must be an array";
      return false;
    }
    for (const obs::JsonValue& item : params->items) {
      ipet::ParamDecl decl;
      const obs::JsonValue* lo = nullptr;
      const obs::JsonValue* hi = nullptr;
      if (item.isObject()) {
        decl.name = item.stringOr("name", "");
        lo = item.find("lo");
        hi = item.find("hi");
      }
      const bool boundsOk = lo != nullptr && lo->isNumber() && lo->isInteger &&
                            hi != nullptr && hi->isNumber() && hi->isInteger;
      if (decl.name.empty() || !boundsOk) {
        if (error != nullptr) {
          *error =
              "\"params\" entries must be objects with a non-empty "
              "\"name\" and integer \"lo\"/\"hi\"";
        }
        return false;
      }
      decl.lo = lo->intValue;
      decl.hi = hi->intValue;
      if (decl.lo > decl.hi) {
        if (error != nullptr) {
          *error = "parameter \"" + decl.name + "\" has lo > hi";
        }
        return false;
      }
      r.parameters.push_back(std::move(decl));
    }
  }
  const std::string cacheMode = doc->stringOr("cache", "allmiss");
  if (const auto mode = ipet::parseCacheMode(cacheMode)) {
    r.cacheMode = *mode;
  } else {
    if (error != nullptr) *error = "unknown cache mode '" + cacheMode + "'";
    return false;
  }
  const std::string policy = doc->stringOr("cachePolicy", "readwrite");
  if (const auto parsed = ipet::parseCachePolicy(policy)) {
    r.cachePolicy = *parsed;
  } else {
    if (error != nullptr) *error = "unknown cache policy '" + policy + "'";
    return false;
  }
  const std::int64_t jobs = doc->intOr("jobs", 1);
  if (jobs < 0 || jobs > 1024) {
    if (error != nullptr) *error = "\"jobs\" must be in [0, 1024]";
    return false;
  }
  r.control.threads = static_cast<int>(jobs);
  const std::int64_t deadlineMs = doc->intOr("deadlineMs", 0);
  if (deadlineMs < 0 || deadlineMs > 86'400'000) {
    if (error != nullptr) {
      *error = "\"deadlineMs\" must be in [0, 86400000]";
    }
    return false;
  }
  r.control.deadline = std::chrono::milliseconds(deadlineMs);
  const std::int64_t maxNodes = doc->intOr("maxNodes", 0);
  if (maxNodes < 0 || maxNodes > (1ll << 31)) {
    if (error != nullptr) *error = "\"maxNodes\" out of range";
    return false;
  }
  r.control.maxNodes = static_cast<int>(maxNodes);
  const std::int64_t maxMemoryMb = doc->intOr("maxMemoryMb", 0);
  if (maxMemoryMb < 0 || maxMemoryMb > (1 << 20)) {
    if (error != nullptr) {
      *error = "\"maxMemoryMb\" must be in [0, 1048576]";
    }
    return false;
  }
  r.control.maxMemoryBytes = static_cast<std::size_t>(maxMemoryMb) << 20;
  r.control.warmStart = doc->boolOr("warmStart", true);
  return true;
}

std::string encodeAnalyzeResponse(const WireId& id,
                                  const ipet::AnalysisResult& result,
                                  std::string_view report,
                                  bool degradedAdmission,
                                  std::string_view telemetry) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("cacheHit")
      .value(result.cacheHit)
      .key("basisWarmStarted")
      .value(result.basisWarmStarted)
      .key("degradedAdmission")
      .value(degradedAdmission)
      .key("digest")
      .value(result.fullDigest.hex())
      .key("structuralDigest")
      .value(result.structuralDigest.hex())
      .key("wallMicros")
      .value(result.wallMicros)
      .key("solveMicros")
      .value(result.solveMicros);
  if (!telemetry.empty()) w.key("telemetry").rawValue(telemetry);
  if (result.formula) w.key("formula").rawValue(result.formula->json());
  w.key("report").rawValue(report).endObject();
  return w.str();
}

std::string encodeEvaluateResponse(const WireId& id,
                                   const ipet::Interval& bound,
                                   std::string_view digest) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("digest")
      .value(digest)
      .key("bound")
      .beginObject()
      .key("lo")
      .value(bound.lo)
      .key("hi")
      .value(bound.hi)
      .endObject()
      .endObject();
  return w.str();
}

std::string encodeErrorResponse(const WireId& id, std::string_view code,
                                std::string_view message) {
  obs::JsonWriter w;
  beginResponse(&w, id, false);
  w.key("code").value(code).key("error").value(message).endObject();
  return w.str();
}

std::string encodePong(const WireId& id) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("pong").value(true).endObject();
  return w.str();
}

std::string encodeStatsResponse(const WireId& id,
                                const ipet::SolveCacheStats& cache,
                                std::size_t boundEntries,
                                std::size_t basisEntries,
                                const ServeCounters& server,
                                std::string_view metricsJson) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("cache")
      .beginObject()
      .key("boundHits")
      .value(cache.boundHits)
      .key("boundMisses")
      .value(cache.boundMisses)
      .key("basisHits")
      .value(cache.basisHits)
      .key("basisMisses")
      .value(cache.basisMisses)
      .key("insertions")
      .value(cache.insertions)
      .key("evictions")
      .value(cache.evictions)
      .key("rejectedInserts")
      .value(cache.rejectedInserts)
      .key("boundEntries")
      .value(static_cast<std::int64_t>(boundEntries))
      .key("basisEntries")
      .value(static_cast<std::int64_t>(basisEntries))
      .endObject();
  w.key("server")
      .beginObject()
      .key("connections")
      .value(server.connections)
      .key("requests")
      .value(server.requests)
      .key("errors")
      .value(server.errors)
      .key("overloadAdmissions")
      .value(server.overloadAdmissions)
      .key("inflight")
      .value(server.inflight)
      .key("rejectedOversize")
      .value(server.rejectedOversize)
      .key("rejectedOverload")
      .value(server.rejectedOverload)
      .key("drainRejections")
      .value(server.drainRejections)
      .key("draining")
      .value(server.draining)
      .endObject();
  if (!metricsJson.empty()) w.key("metrics").rawValue(metricsJson);
  w.endObject();
  return w.str();
}

std::string encodeMetricsResponse(const WireId& id,
                                  std::string_view prometheus) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("contentType")
      .value("text/plain; version=0.0.4")
      .key("prometheus")
      .value(prometheus)
      .endObject();
  return w.str();
}

std::string encodeFlightRecorderResponse(const WireId& id,
                                         std::string_view flightJson) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("flightRecorder").rawValue(flightJson).endObject();
  return w.str();
}

std::string encodeShutdownAck(const WireId& id) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("shuttingDown").value(true).endObject();
  return w.str();
}

std::string encodeHealthResponse(const WireId& id, bool draining,
                                 std::int64_t inflight) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("status")
      .value(draining ? "draining" : "ready")
      .key("draining")
      .value(draining)
      .key("inflight")
      .value(inflight)
      .endObject();
  return w.str();
}

std::string encodeDrainAck(const WireId& id, std::int64_t inflight) {
  obs::JsonWriter w;
  beginResponse(&w, id, true);
  w.key("draining").value(true).key("inflight").value(inflight).endObject();
  return w.str();
}

std::optional<Response> decodeResponse(std::string_view line,
                                       std::string* error) {
  std::string parseError;
  std::optional<obs::JsonValue> doc = obs::jsonParse(line, &parseError);
  if (!doc || !doc->isObject()) {
    if (error != nullptr) {
      *error = !doc ? "not a JSON frame (" + parseError + ")"
                    : "frame must be a JSON object";
    }
    return std::nullopt;
  }
  Response response;
  if (const obs::JsonValue* id = doc->find("id")) {
    if (id->isNumber() && id->isInteger) {
      response.id = id->intValue;
      response.requestId = std::to_string(id->intValue);
    } else if (id->isString()) {
      response.requestId = id->stringValue;
    }
  }
  response.ok = doc->boolOr("ok", false);
  response.errorCode = doc->stringOr("code", "");
  response.error = doc->stringOr("error", "");
  response.cacheHit = doc->boolOr("cacheHit", false);
  response.basisWarmStarted = doc->boolOr("basisWarmStarted", false);
  response.degradedAdmission = doc->boolOr("degradedAdmission", false);
  response.wallMicros = doc->intOr("wallMicros", 0);
  response.solveMicros = doc->intOr("solveMicros", 0);
  response.digest = doc->stringOr("digest", "");
  response.structuralDigest = doc->stringOr("structuralDigest", "");
  if (const obs::JsonValue* report = doc->find("report")) {
    response.sound = report->boolOr("sound", false);
    response.timedOut = report->boolOr("timedOut", false);
    if (const obs::JsonValue* bound = report->find("bound")) {
      response.boundLo = bound->intOr("lo", 0);
      response.boundHi = bound->intOr("hi", 0);
    }
  } else if (const obs::JsonValue* bound = doc->find("bound")) {
    // Evaluate responses carry the bound at the top level (no report).
    response.boundLo = bound->intOr("lo", 0);
    response.boundHi = bound->intOr("hi", 0);
  }
  response.raw = std::move(*doc);
  return response;
}

}  // namespace cinderella::serve
