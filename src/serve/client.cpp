#include "cinderella/serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cinderella::serve {

bool Client::connect(int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    if (error != nullptr) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

std::optional<Response> Client::call(const RequestFrame& frame,
                                     std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  const std::string payload = encodeRequest(frame) + "\n";
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = "send: " + std::string(strerror(errno));
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string line;
  if (!readLine(&line, error)) return std::nullopt;
  std::string decodeError;
  std::optional<Response> response = decodeResponse(line, &decodeError);
  if (!response && error != nullptr) *error = decodeError;
  if (response) response->rawText = std::move(line);
  return response;
}

std::optional<Response> Client::analyze(const ipet::AnalysisRequest& request,
                                        std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Analyze;
  frame.request = request;
  return call(frame, error);
}

std::optional<Response> Client::evaluate(
    std::string_view digest,
    const std::vector<std::pair<std::string, std::int64_t>>& params,
    std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Evaluate;
  frame.evaluateDigest = std::string(digest);
  frame.evaluateParams = params;
  return call(frame, error);
}

std::optional<Response> Client::ping(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Ping;
  return call(frame, error);
}

std::optional<Response> Client::stats(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Stats;
  return call(frame, error);
}

std::optional<Response> Client::metrics(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Metrics;
  return call(frame, error);
}

std::optional<Response> Client::flightrecorder(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::FlightRecorder;
  return call(frame, error);
}

std::optional<Response> Client::shutdown(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Shutdown;
  return call(frame, error);
}

bool Client::readLine(std::string* line, std::string* error) {
  char chunk[4096];
  while (true) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      *line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error != nullptr) *error = "connection closed by server";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace cinderella::serve
