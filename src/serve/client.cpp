#include "cinderella/serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "cinderella/obs/log.hpp"
#include "cinderella/support/io.hpp"

namespace cinderella::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t millisSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

bool Client::connect(int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    if (error != nullptr) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               strerror(errno);
    }
    close();
    return false;
  }
  port_ = port;
  return true;
}

double Client::jitterFactor() {
  if (!jitterSeeded_) {
    jitterState_ = policy_.jitterSeed;
    jitterSeeded_ = true;
  }
  // 53 uniform bits -> [0, 1), then centered on 1.0 with ±jitter spread.
  const double unit =
      static_cast<double>(splitmix64(jitterState_) >> 11) / 9007199254740992.0;
  return 1.0 + policy_.jitter * (2.0 * unit - 1.0);
}

std::optional<Response> Client::call(const RequestFrame& frame,
                                     std::string* error) {
  const Clock::time_point start = Clock::now();
  std::int64_t backoffMs = policy_.initialBackoffMs;
  std::string attemptError;
  for (int attempt = 1;; ++attempt) {
    attemptError.clear();
    std::optional<Response> response = callOnce(frame, &attemptError);
    const bool transportLoss = !response.has_value();
    const bool overloaded = response.has_value() && !response->ok &&
                            response->errorCode == "overloaded" &&
                            policy_.retryOverloaded;
    const bool retryable = transportLoss || overloaded;
    // Drain and shutdown are one-shot: a redelivery after the daemon
    // restarts on the same port would stop the *new* instance.
    if (!retryable || frame.op == Op::Shutdown || frame.op == Op::Drain ||
        attempt >= policy_.maxAttempts) {
      if (transportLoss && error != nullptr) {
        *error = attemptError;
        if (attempt > 1) *error += " (after " + std::to_string(attempt) +
                                   " attempts)";
      }
      return response;
    }
    std::int64_t sleepMs = static_cast<std::int64_t>(
        static_cast<double>(std::min(backoffMs, policy_.maxBackoffMs)) *
        jitterFactor());
    if (sleepMs < 0) sleepMs = 0;
    if (policy_.totalDeadlineMs > 0 &&
        millisSince(start) + sleepMs >= policy_.totalDeadlineMs) {
      if (error != nullptr) {
        *error = (transportLoss ? attemptError
                                : "server overloaded (" + response->error +
                                      ")") +
                 " — retry budget of " +
                 std::to_string(policy_.totalDeadlineMs) + " ms exhausted";
      }
      return response;
    }
    retryStats_.retries += 1;
    if (logger_ != nullptr) {
      logger_->record(obs::LogLevel::Warn, "client-retry")
          .field("id", frame.idIsString ? frame.idText
                                        : std::to_string(frame.id))
          .field("op", opName(frame.op))
          .field("attempt", static_cast<std::int64_t>(attempt))
          .field("backoffMs", sleepMs)
          .field("reason",
                 transportLoss ? attemptError : std::string("overloaded"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
    backoffMs = static_cast<std::int64_t>(
        static_cast<double>(backoffMs) * policy_.backoffMultiplier);
    if (transportLoss) {
      std::string connectError;
      if (connect(port_, &connectError)) {
        retryStats_.reconnects += 1;
      }
      // A failed reconnect falls through: callOnce reports "not
      // connected" and the next round backs off again.
    }
  }
}

std::optional<Response> Client::callOnce(const RequestFrame& frame,
                                         std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  const std::string payload = encodeRequest(frame) + "\n";
  if (!support::io::sendAll(fd_, payload)) {
    if (error != nullptr) *error = "send: " + std::string(strerror(errno));
    return std::nullopt;
  }
  std::string line;
  if (!readLine(&line, error)) return std::nullopt;
  std::string decodeError;
  std::optional<Response> response = decodeResponse(line, &decodeError);
  if (!response && error != nullptr) *error = decodeError;
  if (response) response->rawText = std::move(line);
  return response;
}

std::optional<Response> Client::analyze(const ipet::AnalysisRequest& request,
                                        std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Analyze;
  frame.request = request;
  return call(frame, error);
}

std::optional<Response> Client::evaluate(
    std::string_view digest,
    const std::vector<std::pair<std::string, std::int64_t>>& params,
    std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Evaluate;
  frame.evaluateDigest = std::string(digest);
  frame.evaluateParams = params;
  return call(frame, error);
}

std::optional<Response> Client::ping(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Ping;
  return call(frame, error);
}

std::optional<Response> Client::stats(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Stats;
  return call(frame, error);
}

std::optional<Response> Client::metrics(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Metrics;
  return call(frame, error);
}

std::optional<Response> Client::flightrecorder(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::FlightRecorder;
  return call(frame, error);
}

std::optional<Response> Client::health(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Health;
  return call(frame, error);
}

std::optional<Response> Client::drain(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Drain;
  return call(frame, error);
}

std::optional<Response> Client::shutdown(std::string* error) {
  RequestFrame frame;
  frame.id = nextId_++;
  frame.op = Op::Shutdown;
  return call(frame, error);
}

bool Client::readLine(std::string* line, std::string* error) {
  char chunk[4096];
  while (true) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      *line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return true;
    }
    const ssize_t n = support::io::recvSome(fd_, chunk, sizeof chunk);
    if (n <= 0) {
      if (error != nullptr) *error = "connection closed by server";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace cinderella::serve
