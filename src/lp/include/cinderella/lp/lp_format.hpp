// CPLEX-LP-format writer.
//
// The paper's tool handed its constraint systems to an off-the-shelf
// ILP package; this writer provides the same interop: any Problem can be
// exported and solved/inspected with lp_solve, CBC, glpsol, CPLEX, or
// Gurobi (all read this format).
#pragma once

#include <string>

#include "cinderella/lp/problem.hpp"

namespace cinderella::lp {

struct LpFormatOptions {
  /// Declare every variable integral (the IPET use case).
  bool integer = true;
  /// Emit a comment header naming the producer.
  bool header = true;
};

/// Renders `problem` in LP format.  Variable names are sanitized to the
/// format's identifier rules (alphanumeric plus _ . [] are kept; other
/// characters become '_'; a leading digit gets a 'v' prefix).
[[nodiscard]] std::string toLpFormat(const Problem& problem,
                                     const LpFormatOptions& options = {});

}  // namespace cinderella::lp
