// CPLEX-LP-format writer and reader.
//
// The paper's tool handed its constraint systems to an off-the-shelf
// ILP package; this writer provides the same interop: any Problem can be
// exported and solved/inspected with lp_solve, CBC, glpsol, CPLEX, or
// Gurobi (all read this format).  The reader closes the loop: an
// exported system (or one written by another tool) can be re-ingested
// and solved with this repository's own lp::solve / ilp::solve.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cinderella/lp/problem.hpp"

namespace cinderella::lp {

struct LpFormatOptions {
  /// Declare every variable integral (the IPET use case).
  bool integer = true;
  /// Emit a comment header naming the producer.
  bool header = true;
};

/// Renders `problem` in LP format.  Variable names are sanitized to the
/// format's identifier rules (alphanumeric plus _ . [] are kept; other
/// characters become '_'; a leading digit gets a 'v' prefix).
[[nodiscard]] std::string toLpFormat(const Problem& problem,
                                     const LpFormatOptions& options = {});

/// Parses one LP-format problem (`Maximize`/`Minimize` … `End`).
/// Variables are numbered in order of first appearance (objective, then
/// constraints, then the `General` section).  Supported grammar is the
/// subset this library writes — objective, `Subject To` rows with
/// `<=`/`>=`/`=`, an optional `General`/`Integer` section, `\`-comments —
/// which is also what lp_solve/CBC emit for pure-integer programs.
/// Integrality markers are accepted and ignored: the caller chooses the
/// solver (lp::solve vs ilp::solve).  Throws ParseError on malformed
/// input or trailing text.
[[nodiscard]] Problem parseLpFormat(std::string_view text);

/// Parses a concatenation of LP-format problems, e.g. the output of
/// ipet::Analyzer::exportWorstCaseIlp() (one problem per constraint
/// set).  Throws ParseError when the text contains no problem at all.
[[nodiscard]] std::vector<Problem> parseLpFormatAll(std::string_view text);

}  // namespace cinderella::lp
