// Byte-stable serialization of lp::Basis for the persistent solve
// cache's disk snapshots.
//
// A Basis is pure column bookkeeping over the *stable* column-id scheme
// (variable v ↦ v, slack of row r ↦ numVars + 2r, artificial ↦
// numVars + 2r + 1 — see simplex.hpp), so a serialized basis written on
// one machine installs on any other as long as the constraint system it
// came from is byte-identical — which is exactly what the cache's
// content-addressed keys guarantee.  The encoding is explicit
// little-endian: no host-endian struct dumps.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cinderella/lp/simplex.hpp"

namespace cinderella::lp {

/// Compact binary encoding (magic "CBAS", version, numVars, row count,
/// basic column per row; all integers little-endian).
[[nodiscard]] std::string serializeBasis(const Basis& basis);

/// Inverse of serializeBasis.  Returns nullopt on any malformation
/// (bad magic, unknown version, truncation, trailing bytes, negative or
/// absurd column ids) — a corrupt snapshot degrades to a cold solve,
/// never to undefined behavior.
[[nodiscard]] std::optional<Basis> parseBasis(std::string_view bytes);

}  // namespace cinderella::lp
