// Linear-program model shared by the LP and ILP solvers.
//
// All variables are continuous and implicitly bounded below by zero; this
// matches IPET, where every variable is an execution count.  Upper bounds
// are expressed as ordinary constraints.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cinderella::lp {

/// One `coeff * x[var]` term of a sparse linear expression.
struct Term {
  int var = 0;
  double coeff = 0.0;

  friend bool operator==(const Term&, const Term&) = default;
};

/// Sparse linear expression `sum(terms) + constant`.
class LinearExpr {
 public:
  LinearExpr() = default;

  /// Adds `coeff * x[var]`; merges with an existing term for `var`.
  void add(int var, double coeff);
  void addConstant(double value) { constant_ += value; }

  /// Removes zero-coefficient terms and sorts by variable index.
  void canonicalize();

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }

  /// Evaluates the expression at the given point.
  [[nodiscard]] double evaluate(const std::vector<double>& point) const;

  /// Largest variable index referenced, or -1 when empty.
  [[nodiscard]] int maxVar() const;

 private:
  std::vector<Term> terms_;
  double constant_ = 0.0;
};

enum class Relation { LessEq, GreaterEq, Equal };

[[nodiscard]] const char* relationStr(Relation rel);

/// Constraint `expr (<=|>=|=) rhs`.  The expression's constant is folded
/// into the right-hand side by the solver.
struct Constraint {
  LinearExpr expr;
  Relation rel = Relation::LessEq;
  double rhs = 0.0;

  /// True when `point` satisfies the constraint within `tol`.
  [[nodiscard]] bool satisfiedBy(const std::vector<double>& point,
                                 double tol = 1e-6) const;
};

enum class Sense { Maximize, Minimize };

/// A complete LP: objective, sense, and constraint rows over variables
/// x[0..numVars), each with implicit bound x >= 0.
class Problem {
 public:
  /// Creates a fresh variable and returns its index.
  int addVar(std::string name = {});

  /// Ensures at least `count` variables exist.
  void ensureVars(int count);

  void setObjective(LinearExpr expr, Sense sense);
  void addConstraint(Constraint c);
  void addConstraint(LinearExpr expr, Relation rel, double rhs);

  /// Drops constraints beyond the first `count`, keeping variables and
  /// objective.  Lets branch-and-bound reuse one work problem across
  /// nodes (pop this node's cuts, push the next node's) instead of
  /// copying the whole problem per node.
  void truncateConstraints(std::size_t count);

  [[nodiscard]] int numVars() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] const LinearExpr& objective() const { return objective_; }
  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::string& varName(int var) const {
    return names_[static_cast<std::size_t>(var)];
  }

  /// True when `point` satisfies every constraint and all nonnegativity
  /// bounds within `tol`.
  [[nodiscard]] bool isFeasiblePoint(const std::vector<double>& point,
                                     double tol = 1e-6) const;

  /// Human-readable dump (for diagnostics and tests).
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> names_;
  LinearExpr objective_;
  Sense sense_ = Sense::Maximize;
  std::vector<Constraint> constraints_;
};

}  // namespace cinderella::lp
