// Two-phase primal simplex solver over a dense tableau.
//
// Sized for IPET workloads: hundreds of variables and constraints.  Uses
// Bland's rule (lexicographically smallest entering/leaving index) so the
// method provably terminates even on degenerate flow problems, which IPET
// constraint systems almost always are.
#pragma once

#include <string>
#include <vector>

#include "cinderella/lp/problem.hpp"

namespace cinderella::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

[[nodiscard]] const char* solveStatusStr(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  /// Objective value in the problem's own sense (valid when Optimal).
  double objective = 0.0;
  /// Value of every original variable (valid when Optimal).
  std::vector<double> values;
  /// Total simplex pivots across both phases.
  int pivots = 0;
};

struct SimplexOptions {
  /// Hard cap on pivots across both phases; exceeded => IterationLimit.
  int maxPivots = 200000;
  /// Pivot-element magnitude below which a column is treated as zero.
  double pivotTol = 1e-9;
  /// Feasibility/optimality tolerance on reduced costs and residuals.
  double tol = 1e-7;
};

/// Solves `problem` and returns its optimum, or the failure status.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

}  // namespace cinderella::lp
