// Two-phase primal simplex solver over a dense tableau.
//
// Sized for IPET workloads: hundreds of variables and constraints.  The
// default pivot rule is Dantzig (most negative reduced cost), which is
// fast in practice but can cycle on degenerate flow problems — which
// IPET constraint systems almost always are.  When a Dantzig run hits
// its pivot budget, solve() automatically re-solves once under Bland's
// rule (lexicographically smallest entering index), which provably
// terminates; only if Bland also exhausts the budget does the caller see
// IterationLimit.
#pragma once

#include <string>
#include <vector>

#include "cinderella/lp/problem.hpp"

namespace cinderella::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

[[nodiscard]] const char* solveStatusStr(SolveStatus status);

/// Entering-column selection strategy.
enum class PivotRule {
  /// Most negative reduced cost; fast, but may cycle on degeneracy.
  Dantzig,
  /// Smallest-index negative reduced cost; provably terminating.
  Bland,
};

[[nodiscard]] const char* pivotRuleStr(PivotRule rule);

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  /// Objective value in the problem's own sense (valid when Optimal).
  double objective = 0.0;
  /// Value of every original variable (valid when Optimal).
  std::vector<double> values;
  /// Total simplex pivots across both phases (summed over both attempts
  /// when the Bland re-solve kicked in).
  int pivots = 0;
  /// True when the Dantzig run hit maxPivots and the solve was redone
  /// from scratch under Bland's rule.
  bool blandRestart = false;
};

struct SimplexOptions {
  /// Hard cap on pivots across both phases; exceeded => IterationLimit.
  int maxPivots = 200000;
  /// Pivot-element magnitude below which a column is treated as zero.
  double pivotTol = 1e-9;
  /// Feasibility/optimality tolerance on reduced costs and residuals.
  double tol = 1e-7;
  /// Entering-column rule for the first attempt.
  PivotRule pivotRule = PivotRule::Dantzig;
  /// On IterationLimit under Dantzig, re-solve once under Bland's rule
  /// (cycling is the usual culprit; Bland cannot cycle).
  bool blandRetry = true;
};

/// Solves `problem` and returns its optimum, or the failure status.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

}  // namespace cinderella::lp
