// Two-phase primal simplex solver over a sparse-row tableau, with an
// incremental warm-start path.
//
// Sized for IPET workloads: hundreds of variables and constraints.  The
// default pivot rule is Dantzig (most negative reduced cost), which is
// fast in practice but can cycle on degenerate flow problems — which
// IPET constraint systems almost always are.  When a Dantzig run hits
// its pivot budget, the solver switches to Bland's rule in place
// (continuing from the current basis, not from scratch) with a fresh
// budget; only if Bland also exhausts the budget does the caller see
// IterationLimit.
//
// Warm starts: solveWarm() can resume from a Basis snapshot taken from a
// related solve (same constraint-row prefix, possibly extra appended
// rows).  A basis that became primal-infeasible after a bound tightening
// is repaired by a dual-simplex phase — classically a handful of pivots
// instead of a full two-phase solve.  Warm starts never change results:
// any basis that cannot be installed or proves unusable falls back to
// the cold two-phase path.
#pragma once

#include <string>
#include <vector>

#include "cinderella/lp/problem.hpp"

namespace cinderella::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

[[nodiscard]] const char* solveStatusStr(SolveStatus status);

/// Entering-column selection strategy.
enum class PivotRule {
  /// Most negative reduced cost; fast, but may cycle on degeneracy.
  Dantzig,
  /// Smallest-index negative reduced cost; provably terminating.
  Bland,
};

[[nodiscard]] const char* pivotRuleStr(PivotRule rule);

/// A simplex basis snapshot: which column is basic in each constraint
/// row.  Columns are identified by stable ids that survive appending
/// rows to the problem — original variable v is column v, the
/// slack/surplus of row r is column numVars + 2r, and the artificial of
/// row r is column numVars + 2r + 1 — so a basis extracted from a parent
/// problem can seed any child that shares the parent's constraint-row
/// prefix (e.g. the same set plus one branch-and-bound cut).
struct Basis {
  int numVars = 0;
  /// Basic column id per constraint row, in row order.
  std::vector<int> basicCol;

  [[nodiscard]] bool empty() const { return basicCol.empty(); }
};

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  /// Objective value in the problem's own sense (valid when Optimal).
  double objective = 0.0;
  /// Value of every original variable (valid when Optimal).
  std::vector<double> values;
  /// Total simplex iterations across all phases (primal and dual,
  /// including the continued Bland pivots when the in-place restart
  /// kicked in, and any iterations wasted on a failed warm attempt).
  /// Basis-installation eliminations are counted in installPivots, not
  /// here, so warm and cold pivot totals compare like for like.
  int pivots = 0;
  /// Pivots spent in the dual-simplex repair phase of a warm start.
  int dualPivots = 0;
  /// Gauss-Jordan eliminations spent installing a warm basis
  /// (refactorization work, bounded by the row count; not simplex
  /// iterations and excluded from `pivots`).
  int installPivots = 0;
  /// True when the Dantzig run hit maxPivots and the solve continued
  /// from the same basis under Bland's rule.
  bool blandRestart = false;
  /// True when the solve ran from the supplied warm basis (no cold
  /// two-phase rebuild).
  bool warmUsed = false;
  /// True when a warm basis was supplied but could not be used and the
  /// solve fell back to the cold path.
  bool warmFailed = false;
};

struct SimplexOptions {
  /// Hard cap on pivots across both phases; exceeded => IterationLimit.
  int maxPivots = 200000;
  /// Pivot-element magnitude below which a column is treated as zero.
  double pivotTol = 1e-9;
  /// Feasibility/optimality tolerance on reduced costs and residuals.
  double tol = 1e-7;
  /// Entering-column rule for the first attempt.
  PivotRule pivotRule = PivotRule::Dantzig;
  /// On IterationLimit under Dantzig, continue once under Bland's rule
  /// (cycling is the usual culprit; Bland cannot cycle).
  bool blandRetry = true;
};

/// Solves `problem` and returns its optimum, or the failure status.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

/// Solves `problem`, optionally warm-starting from `warmBasis` (a basis
/// extracted from a solve whose constraint rows are a prefix of this
/// problem's rows).  When the warm basis cannot be installed or leaves
/// the solver in a state that is neither primal- nor dual-feasible, the
/// solve silently falls back to the cold two-phase path
/// (Solution::warmFailed reports that).  When `finalBasis` is non-null
/// and the solve is Optimal, it receives the final basis for chaining
/// into subsequent warm starts.  Bounds are bit-identical to solve().
[[nodiscard]] Solution solveWarm(const Problem& problem,
                                 const SimplexOptions& options,
                                 const Basis* warmBasis, Basis* finalBasis);

}  // namespace cinderella::lp
