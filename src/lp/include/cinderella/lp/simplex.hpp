// Two-phase primal simplex solver over a sparse-row tableau, with an
// incremental warm-start path and a presolve/postsolve reduction pass.
//
// Sized for IPET workloads: hundreds of variables and constraints.  The
// default pivot rule is Devex reference-framework pricing, which prices
// columns by reduced cost scaled against an approximate steepest-edge
// weight — on degenerate flow problems it takes far fewer pivots than
// pure Dantzig while costing the same per-iteration scan.  When the
// first-attempt rule (Devex or Dantzig) hits its pivot budget, the
// solver switches to Bland's rule in place (continuing from the current
// basis, not from scratch) with a fresh budget; only if Bland also
// exhausts the budget does the caller see IterationLimit.
//
// Presolve: when SimplexOptions::presolve is set, each solve first runs
// the lp::Reduction fixpoint pass (see presolve.hpp) and the simplex
// only ever sees the reduced rows; solutions and bases are mapped back
// to the original space, so callers observe identical results.
//
// Warm starts: solveWarm() can resume from a Basis snapshot taken from a
// related solve (same constraint-row prefix, possibly extra appended
// rows).  A basis that became primal-infeasible after a bound tightening
// is repaired by a dual-simplex phase — classically a handful of pivots
// instead of a full two-phase solve.  Warm starts never change results:
// any basis that cannot be installed or proves unusable falls back to
// the cold two-phase path.
#pragma once

#include <string>
#include <vector>

#include "cinderella/lp/problem.hpp"

namespace cinderella::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

[[nodiscard]] const char* solveStatusStr(SolveStatus status);

/// Entering-column selection strategy.
enum class PivotRule {
  /// Most negative reduced cost; fast, but may cycle on degeneracy.
  Dantzig,
  /// Smallest-index negative reduced cost; provably terminating.
  Bland,
  /// Devex reference-framework pricing: maximizes rc^2 / weight, where
  /// the weights approximate steepest-edge norms and are updated from
  /// the pivot row.  Same O(cols) scan as Dantzig, far fewer pivots on
  /// degenerate flow systems.
  Devex,
};

[[nodiscard]] const char* pivotRuleStr(PivotRule rule);

/// A simplex basis snapshot: which column is basic in each constraint
/// row.  Columns are identified by stable ids that survive appending
/// rows to the problem — original variable v is column v, the
/// slack/surplus of row r is column numVars + 2r, and the artificial of
/// row r is column numVars + 2r + 1 — so a basis extracted from a parent
/// problem can seed any child that shares the parent's constraint-row
/// prefix (e.g. the same set plus one branch-and-bound cut).
struct Basis {
  int numVars = 0;
  /// Basic column id per constraint row, in row order.
  std::vector<int> basicCol;

  [[nodiscard]] bool empty() const { return basicCol.empty(); }
};

/// What the presolve reduction pass removed ahead of one solve.  All
/// zero when presolve is disabled or found nothing to reduce.
struct PresolveStats {
  /// Constraint rows dropped (substituted away, forced, redundant, or
  /// duplicates).
  int rowsRemoved = 0;
  /// Variables eliminated at a fixed value (lo == hi after bound
  /// propagation, e.g. blocks pinned to 1 or forced to 0).
  int colsFixed = 0;
  /// Variables eliminated by singleton-equality substitution.
  int substitutions = 0;
  /// Fixpoint rounds the reduction pass ran before quiescing.
  int propagationRounds = 0;

  friend bool operator==(const PresolveStats&, const PresolveStats&) =
      default;
};

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  /// Objective value in the problem's own sense (valid when Optimal).
  double objective = 0.0;
  /// Value of every original variable (valid when Optimal).
  std::vector<double> values;
  /// Total simplex iterations across all phases (primal and dual,
  /// including the continued Bland pivots when the in-place restart
  /// kicked in, and any iterations wasted on a failed warm attempt).
  /// Basis-installation eliminations are counted in installPivots, not
  /// here, so warm and cold pivot totals compare like for like.
  int pivots = 0;
  /// Pivots spent in the dual-simplex repair phase of a warm start.
  int dualPivots = 0;
  /// Gauss-Jordan eliminations spent installing a warm basis
  /// (refactorization work, bounded by the row count; not simplex
  /// iterations and excluded from `pivots`).
  int installPivots = 0;
  /// True when the configured rule hit maxPivots (or the
  /// degenerate-stall guard) and the solve was re-run from scratch on a
  /// fresh tableau under a more conservative rule (Dantzig, then
  /// Bland).
  bool blandRestart = false;
  /// True when the solve ran from the supplied warm basis (no cold
  /// two-phase rebuild).
  bool warmUsed = false;
  /// True when a warm basis was supplied but could not be used and the
  /// solve fell back to the cold path.
  bool warmFailed = false;
  /// Pivots chosen by Devex pricing (subset of `pivots`; the rest were
  /// Dantzig/Bland picks or dual-simplex repairs).
  int devexPivots = 0;
  /// What the presolve pass removed before the simplex ran.
  PresolveStats presolve;
};

struct SimplexOptions {
  /// Hard cap on pivots across both phases; exceeded => IterationLimit.
  int maxPivots = 200000;
  /// Pivot-element magnitude below which a column is treated as zero.
  double pivotTol = 1e-9;
  /// Feasibility/optimality tolerance on reduced costs and residuals.
  double tol = 1e-7;
  /// Entering-column rule for the first attempt.
  PivotRule pivotRule = PivotRule::Devex;
  /// On IterationLimit (budget exhausted or the degenerate-stall guard
  /// tripped), re-solve from scratch under progressively more
  /// conservative rules — Dantzig, then Bland, which cannot cycle.
  /// Cycling/stalling is the usual culprit and a fresh tableau carries
  /// none of the numeric drift the stalled one accumulated.
  bool blandRetry = true;
  /// Run the lp::Reduction presolve pass before the simplex and map the
  /// solution/basis back afterwards.  Results are identical either way;
  /// the reduced tableau is just smaller.
  bool presolve = true;
};

/// Solves `problem` and returns its optimum, or the failure status.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

/// Solves `problem`, optionally warm-starting from `warmBasis` (a basis
/// extracted from a solve whose constraint rows are a prefix of this
/// problem's rows).  When the warm basis cannot be installed or leaves
/// the solver in a state that is neither primal- nor dual-feasible, the
/// solve silently falls back to the cold two-phase path
/// (Solution::warmFailed reports that).  When `finalBasis` is non-null
/// and the solve is Optimal, it receives the final basis for chaining
/// into subsequent warm starts.  Bounds are bit-identical to solve().
[[nodiscard]] Solution solveWarm(const Problem& problem,
                                 const SimplexOptions& options,
                                 const Basis* warmBasis, Basis* finalBasis);

}  // namespace cinderella::lp
