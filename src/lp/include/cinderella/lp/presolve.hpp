// Presolve/postsolve reduction engine: shrinks an lp::Problem before it
// reaches the simplex, and maps reduced-space solutions *and bases* back
// to the original space afterwards.
//
// The reduction is a fixpoint pass that performs, on rows whose
// coefficients and right-hand side are exactly integral (checked
// __int128 arithmetic throughout — a reduction is only ever applied when
// it is provably exact):
//
//   (a) singleton-equality substitution: an Equal row with a unit
//       coefficient on some variable v whose solved-out form
//       v = rhs - sum(a_j x_j) has only nonnegative coefficients and
//       constant (so v >= 0 is implied and the implicit bound can be
//       dropped with the row).  Flow-conservation rows
//       x_i = sum d_in are exactly this shape, so IPET systems roughly
//       halve their variable count here.
//   (b) bound propagation through sum-in = sum-out rows: per-row
//       minimum/maximum activities computed from the implicit x >= 0
//       bounds and upper bounds harvested from singleton rows; a row
//       whose rhs pins the activity at one of those extremes forces
//       every participating variable to its bound.
//   (c) fixed-variable elimination (lo == hi): entry/exit blocks pinned
//       to 1, blocks forced to 0, and anything propagation fixes are
//       folded into the right-hand sides and the objective constant.
//   (d) redundant/dominated row removal: rows that can never bind given
//       the known bounds, and duplicate rows (keeping the tighter rhs;
//       contradictory Equal duplicates prove infeasibility).
//
// Soundness: every reduction is a bijection between the feasible
// regions of the original and reduced problems that preserves the
// objective value, so statuses and optima are identical; the simplex
// just walks a smaller tableau.  Infeasibility is only ever concluded
// from exact integer arithmetic (an integral system that is infeasible
// is infeasible by a margin of at least 1, far beyond the simplex
// feasibility tolerance), so presolve and the unreduced simplex always
// agree on the verdict.
#pragma once

#include <optional>
#include <vector>

#include "cinderella/lp/problem.hpp"
#include "cinderella/lp/simplex.hpp"

namespace cinderella::lp {

/// The result of presolving one Problem: the reduced problem plus the
/// postsolve stack needed to map solutions and bases back.
class Reduction {
 public:
  /// Runs the fixpoint reduction pass over `original`.
  [[nodiscard]] static Reduction reduce(const Problem& original,
                                        const SimplexOptions& options);

  /// True when the reduction proved the problem infeasible outright
  /// (exact integer arithmetic only; the simplex would agree).  The
  /// reduced problem is not meaningful in this case.
  [[nodiscard]] bool provedInfeasible() const { return infeasible_; }

  /// True when at least one row or column was eliminated; when false
  /// the reduced problem is just a copy and callers should solve the
  /// original directly.
  [[nodiscard]] bool effective() const {
    return stats_.rowsRemoved > 0 || stats_.colsFixed > 0 ||
           stats_.substitutions > 0;
  }

  [[nodiscard]] const Problem& reduced() const { return reduced_; }
  [[nodiscard]] const PresolveStats& stats() const { return stats_; }

  /// Maps a reduced-space solution point back to the original variable
  /// space: surviving variables copy through, fixed variables take their
  /// fixed value, substituted variables are recomputed from their
  /// recorded row (replayed in reverse elimination order).
  [[nodiscard]] std::vector<double> postsolveValues(
      const std::vector<double>& reducedValues) const;

  /// Maps a reduced-space basis back to a full original-space basis:
  /// surviving rows translate their basic column through the row/column
  /// maps; each removed row contributes the column that makes the
  /// combined basis non-singular on the original tableau (the
  /// substituted/fixed variable for elimination rows, the row's own
  /// slack or artificial for redundant rows).  The result installs on
  /// the original problem via Tableau::installBasis and round-trips
  /// through the CBAS codec, so warm-start chaining across solves is
  /// unaffected by presolve.
  [[nodiscard]] Basis postsolveBasis(const Basis& reducedBasis) const;

  /// Maps an original-space warm basis into the reduced space, or
  /// nullopt when no clean mapping exists (e.g. two rows collapse onto
  /// the same reduced column); the caller then warm-starts on the
  /// original tableau instead, which is always sound.
  [[nodiscard]] std::optional<Basis> translateBasis(
      const Basis& originalBasis) const;

 private:
  /// One postsolve-stack entry restoring an eliminated variable.
  struct Restore {
    int var = 0;
    /// Constant part of the restored value.
    double constant = 0.0;
    /// For substitutions: v = constant + sum(coeff * x[term.var]) over
    /// original variable ids; empty for plain fixes.
    std::vector<Term> terms;
  };

  Problem reduced_;
  PresolveStats stats_;
  bool infeasible_ = false;
  int origVars_ = 0;
  int origRows_ = 0;
  /// Original var -> reduced var index, or -1 when eliminated.
  std::vector<int> varMap_;
  /// Reduced var -> original var.
  std::vector<int> reducedVars_;
  /// Original row -> reduced row index, or -1 when removed.
  std::vector<int> rowMap_;
  /// Relation of every original row (for slack/artificial existence
  /// checks when mapping bases).
  std::vector<Relation> origRel_;
  /// Reduced row -> original row.
  std::vector<int> survivingRows_;
  /// Original-space basic column for each removed original row (unused
  /// slots hold -1 for surviving rows).
  std::vector<int> removedRowBasic_;
  /// Eliminated variables in elimination order (replayed in reverse).
  std::vector<Restore> restores_;
};

}  // namespace cinderella::lp
