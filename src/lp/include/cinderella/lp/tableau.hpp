// Sparse-row simplex tableau in standard form, shared by the cold
// two-phase path and the incremental warm-start path.
//
// Rows are kept as sorted (column, value) entry lists — IPET constraint
// matrices are flow matrices with a handful of nonzeros per row, so the
// dense tableau this replaces spent most of its time streaming zeros.
// The objective (reduced-cost) row is kept dense: every entering-column
// scan reads all of it anyway.
//
// Column ids are stable under row appends (see lp::Basis in
// simplex.hpp): original variable v is column v, the slack/surplus of
// row r is column numVars + 2r, the artificial of row r is column
// numVars + 2r + 1.  A Basis extracted from a parent tableau therefore
// remains meaningful in any tableau whose constraint rows extend the
// parent's rows, which is exactly what branch-and-bound cuts and
// set-over-structural-core materialization produce.
#pragma once

#include <optional>
#include <vector>

#include "cinderella/lp/problem.hpp"
#include "cinderella/lp/simplex.hpp"

namespace cinderella::lp {

class Tableau {
 public:
  Tableau(const Problem& problem, const SimplexOptions& options);

  /// Cold two-phase solve: phase 1 drives artificials to zero (when any
  /// exist), phase 2 optimizes `objective` (dense over the original
  /// variables, maximization) plus `constant`.
  [[nodiscard]] Solution run(const std::vector<double>& objective,
                             double constant);

  /// Warm solve: installs `from` (plus natural slack/surplus basics for
  /// rows beyond the snapshot), repairs primal infeasibility with a
  /// dual-simplex phase, then runs primal phase 2.  Returns nullopt when
  /// the basis cannot be used soundly — singular or missing target
  /// columns, a state that is neither primal- nor dual-feasible, an
  /// artificial left basic at a nonzero level, or an exhausted pivot
  /// budget — in which case the caller must fall back to a cold solve on
  /// a fresh tableau.  A returned Infeasible solution is a genuine
  /// result.
  [[nodiscard]] std::optional<Solution> runWarm(
      const std::vector<double>& objective, double constant,
      const Basis& from);

  /// Snapshot of the current basis (chain into later runWarm calls).
  [[nodiscard]] Basis extractBasis() const;

  /// Simplex iterations (primal + dual); basis-installation
  /// eliminations are counted separately in installPivots().
  [[nodiscard]] int totalPivots() const { return pivots_; }
  [[nodiscard]] int dualPivots() const { return dualPivots_; }
  [[nodiscard]] int installPivots() const { return installPivots_; }
  [[nodiscard]] int devexPivots() const { return devexPivots_; }

  // Introspection for tests.
  [[nodiscard]] int numRows() const { return m_; }
  [[nodiscard]] double rowRhs(int row) const;
  [[nodiscard]] int basicColumn(int row) const;

  /// Stable column ids (also documented on lp::Basis).
  [[nodiscard]] static int slackColumn(int numVars, int row) {
    return numVars + 2 * row;
  }
  [[nodiscard]] static int artificialColumn(int numVars, int row) {
    return numVars + 2 * row + 1;
  }

 private:
  struct Entry {
    int col = 0;
    double val = 0.0;
  };
  using SparseRow = std::vector<Entry>;

  [[nodiscard]] bool isArtificialColumn(int col) const {
    return col >= numOriginal_ && ((col - numOriginal_) % 2) == 1;
  }
  [[nodiscard]] static double rowCoeff(const SparseRow& row, int col);
  static void setRowCoeff(SparseRow* row, int col, double val);
  /// dst -= factor * src, eliminating `eliminateCol` exactly and
  /// dropping entries below the drop tolerance.
  void subtractScaled(SparseRow* dst, double factor, const SparseRow& src,
                      int eliminateCol);

  void pivot(int row, int col);
  /// Installs the objective row for `coeff(col)` and prices out the
  /// current basis so reduced costs are consistent.
  template <typename CoeffFn>
  void setObjectiveRow(CoeffFn coeff);
  [[nodiscard]] double objectiveValue() const { return objRhs_; }

  [[nodiscard]] SolveStatus optimize(bool allowArtificialEntering);
  [[nodiscard]] SolveStatus dualSimplex();
  /// Audit after a claimed-Optimal solve: true when every basic value is
  /// nonnegative within a scale-aware tolerance.  Accumulated pivot
  /// drift can push a row's rhs genuinely negative (an ignored
  /// constraint); callers treat a failed audit as IterationLimit so the
  /// solver re-solves on a fresh tableau under Bland's rule.
  [[nodiscard]] bool primalFeasibleAtTol() const;
  bool evictArtificials();
  /// Gauss-Jordan refactorization to the target basis; false when the
  /// target is singular/unreachable at the pivot tolerance.
  bool installBasis(const Basis& from);
  void fillSolutionValues(Solution* solution) const;

  SimplexOptions opt_;
  PivotRule rule_ = PivotRule::Dantzig;
  int pivotBudget_ = 0;
  int numOriginal_ = 0;
  int m_ = 0;
  int numCols_ = 0;
  std::vector<SparseRow> rows_;
  std::vector<double> rhs_;
  std::vector<double> obj_;
  double objRhs_ = 0.0;
  /// Which stable column ids actually exist in this tableau (a LessEq
  /// row has no artificial, an Equal row has no slack).
  std::vector<unsigned char> colExists_;
  std::vector<int> basis_;
  SparseRow scratch_;
  /// Devex reference-framework weights, one per column; reinitialized
  /// to 1.0 at every optimize() entry (a fresh reference framework) and
  /// whenever they grow past the reset threshold.
  std::vector<double> devexWeights_;
  int pivots_ = 0;
  int dualPivots_ = 0;
  int installPivots_ = 0;
  int devexPivots_ = 0;
};

}  // namespace cinderella::lp
