#include "cinderella/lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cinderella/lp/tableau.hpp"

namespace cinderella::lp {

namespace {

using Int128 = __int128;

/// Magnitude cap on every integer the reduction manipulates.  Well
/// inside the range where a double is exact, with headroom for sums, so
/// converting back to the double-based Problem never rounds.
constexpr long long kMaxMagnitude = 1LL << 52;

/// Fixpoint round cap: reductions left on the table after this many
/// rounds are a lost optimization, never a soundness problem.
constexpr int kMaxRounds = 25;

/// Substitution fill-in cap: a variable occurring in more rows than
/// this is not worth eliminating (each occurrence merges the pivot row
/// in).
constexpr int kMaxSubstOccurrences = 16;

/// True when `v` is an exact integer of safe magnitude; writes it out.
bool exactInt(double v, long long* out) {
  if (!(v >= -static_cast<double>(kMaxMagnitude) &&
        v <= static_cast<double>(kMaxMagnitude))) {
    return false;
  }
  if (v != std::nearbyint(v)) return false;
  *out = static_cast<long long>(v);
  return true;
}

bool fits(Int128 v) {
  return v >= -static_cast<Int128>(kMaxMagnitude) &&
         v <= static_cast<Int128>(kMaxMagnitude);
}

struct WTerm {
  int var = 0;
  long long coeff = 0;

  friend bool operator==(const WTerm&, const WTerm&) = default;
};

/// Working form of one exactly-integral constraint row.
struct WRow {
  std::vector<WTerm> terms;  // sorted by var, nonzero coefficients
  Relation rel = Relation::LessEq;
  long long rhs = 0;
  bool alive = true;
};

struct VarState {
  bool fixed = false;
  bool substituted = false;
  /// Appears in a row with non-integral data: exempt from every
  /// reduction (the row is kept verbatim and exact reasoning about the
  /// variable is impossible).
  bool untouchable = false;
  long long value = 0;  // when fixed
  bool hasUb = false;
  long long ub = 0;
  /// Row currently enforcing the upper bound (never removed as
  /// redundant while it is the active source).
  int ubSource = -1;

  [[nodiscard]] bool eliminated() const { return fixed || substituted; }
};

/// Activity bound that may be infinite in either direction.
struct Bound {
  bool finite = true;
  Int128 value = 0;
};

}  // namespace

Reduction Reduction::reduce(const Problem& original,
                            const SimplexOptions& options) {
  (void)options;
  Reduction out;
  const int n = original.numVars();
  const auto& cons = original.constraints();
  const int m = static_cast<int>(cons.size());
  out.origVars_ = n;
  out.origRows_ = m;

  std::vector<WRow> rows(static_cast<std::size_t>(m));
  std::vector<char> integral(static_cast<std::size_t>(m), 1);
  std::vector<VarState> vars(static_cast<std::size_t>(n));
  // Host row for a variable fixed at a nonzero value: the singleton row
  // that determined it, which must carry the variable as its basic
  // column in the postsolved basis (a nonbasic variable reads as zero).
  std::vector<int> pendingHost(static_cast<std::size_t>(m), -1);
  out.removedRowBasic_.assign(static_cast<std::size_t>(m), -1);

  // Parse every constraint into exact-integer working form; rows with
  // any non-integral number are kept verbatim and quarantine their
  // variables from all reductions.
  for (int i = 0; i < m; ++i) {
    const Constraint& c = cons[static_cast<std::size_t>(i)];
    WRow& row = rows[static_cast<std::size_t>(i)];
    row.rel = c.rel;
    bool ok = exactInt(c.rhs - c.expr.constant(), &row.rhs);
    if (ok) {
      for (const Term& t : c.expr.terms()) {
        long long coeff = 0;
        if (t.var < 0 || t.var >= n || !exactInt(t.coeff, &coeff)) {
          ok = false;
          break;
        }
        if (coeff == 0) continue;
        row.terms.push_back(WTerm{t.var, coeff});
      }
    }
    if (ok) {
      std::sort(row.terms.begin(), row.terms.end(),
                [](const WTerm& a, const WTerm& b) { return a.var < b.var; });
      // Merge duplicate variables exactly.
      std::vector<WTerm> merged;
      for (const WTerm& t : row.terms) {
        if (!merged.empty() && merged.back().var == t.var) {
          const Int128 sum =
              static_cast<Int128>(merged.back().coeff) + t.coeff;
          if (!fits(sum)) {
            ok = false;
            break;
          }
          merged.back().coeff = static_cast<long long>(sum);
        } else {
          merged.push_back(t);
        }
      }
      if (ok) {
        merged.erase(std::remove_if(merged.begin(), merged.end(),
                                    [](const WTerm& t) {
                                      return t.coeff == 0;
                                    }),
                     merged.end());
        row.terms = std::move(merged);
      }
    }
    if (!ok) {
      integral[static_cast<std::size_t>(i)] = 0;
      row.terms.clear();
      for (const Term& t : c.expr.terms()) {
        if (t.var >= 0 && t.var < n) {
          vars[static_cast<std::size_t>(t.var)].untouchable = true;
        }
      }
    }
  }

  // Working objective (doubles: the objective never participates in
  // exact inference, it is only rewritten alongside the rows).
  std::vector<double> obj(static_cast<std::size_t>(n), 0.0);
  for (const Term& t : original.objective().terms()) {
    if (t.var >= 0 && t.var < n) obj[static_cast<std::size_t>(t.var)] += t.coeff;
  }
  double objConst = original.objective().constant();

  bool infeasible = false;
  bool aborted = false;  // integer overflow: bail out, solve unreduced
  bool changed = false;

  auto removeRow = [&](int r, int basicCol) {
    rows[static_cast<std::size_t>(r)].alive = false;
    out.removedRowBasic_[static_cast<std::size_t>(r)] = basicCol;
    ++out.stats_.rowsRemoved;
    changed = true;
  };

  auto fixVar = [&](int v, long long val) -> bool {
    VarState& s = vars[static_cast<std::size_t>(v)];
    if (val < 0 || (s.hasUb && val > s.ub)) {
      infeasible = true;
      return false;
    }
    if (s.fixed) {
      if (s.value != val) infeasible = true;
      return false;
    }
    // A variable appearing in a non-integral row cannot be eliminated
    // (that row is kept verbatim and would dangle); the forced-value
    // inference above is still valid, only the elimination is skipped.
    if (s.untouchable || s.substituted) return false;
    s.fixed = true;
    s.value = val;
    ++out.stats_.colsFixed;
    out.restores_.push_back(Restore{v, static_cast<double>(val), {}});
    changed = true;
    return true;
  };

  int rounds = 0;
  changed = true;
  while (changed && !infeasible && !aborted && rounds < kMaxRounds) {
    changed = false;
    ++rounds;

    for (int r = 0; r < m && !infeasible && !aborted; ++r) {
      WRow& row = rows[static_cast<std::size_t>(r)];
      if (!row.alive || !integral[static_cast<std::size_t>(r)]) continue;

      // (c) Fold fixed variables into the right-hand side.
      {
        std::size_t w = 0;
        Int128 rhs = row.rhs;
        for (const WTerm& t : row.terms) {
          const VarState& s = vars[static_cast<std::size_t>(t.var)];
          if (s.fixed) {
            rhs -= static_cast<Int128>(t.coeff) * s.value;
            changed = true;
          } else {
            row.terms[w++] = t;
          }
        }
        if (w != row.terms.size()) {
          row.terms.resize(w);
          if (!fits(rhs)) {
            aborted = true;
            break;
          }
          row.rhs = static_cast<long long>(rhs);
        }
      }

      // Empty row: verified exactly, then removed — a fixed variable's
      // host row keeps the variable basic so its value survives the
      // basic-solution readout.
      if (row.terms.empty()) {
        const bool violated =
            (row.rel == Relation::LessEq && row.rhs < 0) ||
            (row.rel == Relation::GreaterEq && row.rhs > 0) ||
            (row.rel == Relation::Equal && row.rhs != 0);
        if (violated) {
          infeasible = true;
          break;
        }
        int basic = pendingHost[static_cast<std::size_t>(r)];
        if (basic < 0) {
          basic = row.rel == Relation::Equal
                      ? Tableau::artificialColumn(n, r)
                      : Tableau::slackColumn(n, r);
        }
        removeRow(r, basic);
        continue;
      }

      // (b) Activity bounds from x >= 0 and harvested upper bounds.
      Bound minAct;
      Bound maxAct;
      for (const WTerm& t : row.terms) {
        const VarState& s = vars[static_cast<std::size_t>(t.var)];
        if (t.coeff > 0) {
          if (s.hasUb) {
            maxAct.value += static_cast<Int128>(t.coeff) * s.ub;
          } else {
            maxAct.finite = false;
          }
        } else {
          if (s.hasUb) {
            minAct.value += static_cast<Int128>(t.coeff) * s.ub;
          } else {
            minAct.finite = false;
          }
        }
      }

      if ((row.rel == Relation::LessEq || row.rel == Relation::Equal) &&
          minAct.finite && minAct.value > row.rhs) {
        infeasible = true;
        break;
      }
      if ((row.rel == Relation::GreaterEq || row.rel == Relation::Equal) &&
          maxAct.finite && maxAct.value < row.rhs) {
        infeasible = true;
        break;
      }

      // (d) Rows that can never bind are dropped — except an active
      // upper-bound source, which must keep enforcing its bound.
      auto isUbSource = [&] {
        for (const WTerm& t : row.terms) {
          if (vars[static_cast<std::size_t>(t.var)].ubSource == r) return true;
        }
        return false;
      };
      if (row.rel == Relation::LessEq && maxAct.finite &&
          maxAct.value <= row.rhs && !isUbSource()) {
        removeRow(r, Tableau::slackColumn(n, r));
        continue;
      }
      if (row.rel == Relation::GreaterEq && minAct.finite &&
          minAct.value >= row.rhs && !isUbSource()) {
        removeRow(r, Tableau::slackColumn(n, r));
        continue;
      }

      // (b) Forcing rows: the rhs pins the activity at an attainable
      // extreme, so every participating variable sits at the bound that
      // realizes it (each term's extreme is unique since coeff != 0).
      const bool forceMin =
          minAct.finite && minAct.value == row.rhs &&
          (row.rel == Relation::LessEq || row.rel == Relation::Equal);
      const bool forceMax =
          maxAct.finite && maxAct.value == row.rhs &&
          (row.rel == Relation::GreaterEq || row.rel == Relation::Equal);
      if (forceMin || forceMax) {
        for (const WTerm& t : row.terms) {
          VarState& s = vars[static_cast<std::size_t>(t.var)];
          const bool atUb = forceMin ? (t.coeff < 0) : (t.coeff > 0);
          const long long val = atUb ? s.ub : 0;
          if (fixVar(t.var, val) && val != 0) {
            pendingHost[static_cast<std::size_t>(s.ubSource)] = t.var;
          }
          if (infeasible) break;
        }
        continue;
      }

      // Singleton rows: fix (Equal with exact division) or harvest an
      // upper bound (LessEq/GreaterEq whose normalized form is x <= u).
      if (row.terms.size() == 1) {
        const int v = row.terms[0].var;
        const long long a = row.terms[0].coeff;
        VarState& s = vars[static_cast<std::size_t>(v)];
        if (s.untouchable) continue;
        if (row.rel == Relation::Equal) {
          if (row.rhs % a == 0) {
            const long long val = row.rhs / a;
            if (val < 0) {
              infeasible = true;
              break;
            }
            if (fixVar(v, val)) {
              pendingHost[static_cast<std::size_t>(r)] = v;
            }
          }
        } else if ((row.rel == Relation::LessEq && a > 0) ||
                   (row.rel == Relation::GreaterEq && a < 0)) {
          if (row.rhs % a == 0) {
            const long long u = row.rhs / a;
            if (u < 0) {
              infeasible = true;
              break;
            }
            if (u == 0) {
              if (fixVar(v, 0)) {
                // Fixed at zero: nonbasic in the postsolved basis, no
                // host needed.
              }
            } else if (!s.hasUb || u < s.ub) {
              s.hasUb = true;
              s.ub = u;
              s.ubSource = r;
              changed = true;
            }
          }
        }
      }
    }
    if (infeasible || aborted) break;

    // (d) Duplicate / dominated rows: identical term vectors with the
    // same relation collapse to the tighter right-hand side;
    // contradictory Equal twins prove infeasibility.
    {
      std::vector<int> order;
      for (int r = 0; r < m; ++r) {
        if (rows[static_cast<std::size_t>(r)].alive &&
            integral[static_cast<std::size_t>(r)] &&
            !rows[static_cast<std::size_t>(r)].terms.empty()) {
          order.push_back(r);
        }
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const WRow& ra = rows[static_cast<std::size_t>(a)];
        const WRow& rb = rows[static_cast<std::size_t>(b)];
        if (ra.rel != rb.rel) return ra.rel < rb.rel;
        if (ra.terms != rb.terms) {
          return std::lexicographical_compare(
              ra.terms.begin(), ra.terms.end(), rb.terms.begin(),
              rb.terms.end(), [](const WTerm& x, const WTerm& y) {
                return x.var != y.var ? x.var < y.var : x.coeff < y.coeff;
              });
        }
        return a < b;
      });
      for (std::size_t k = 1; k < order.size() && !infeasible; ++k) {
        const int r1 = order[k - 1];
        const int r2 = order[k];
        WRow& a = rows[static_cast<std::size_t>(r1)];
        WRow& b = rows[static_cast<std::size_t>(r2)];
        if (!a.alive || a.rel != b.rel || a.terms != b.terms) continue;
        if (a.rel == Relation::Equal) {
          if (a.rhs != b.rhs) {
            infeasible = true;
            break;
          }
          removeRow(r2, Tableau::artificialColumn(n, r2));
          order[k] = r1;
          continue;
        }
        // Keep the tighter row; the looser one's slack stays
        // nonnegative at any point the tighter row admits.
        const bool dropSecond = a.rel == Relation::LessEq ? b.rhs >= a.rhs
                                                         : b.rhs <= a.rhs;
        const int loser = dropSecond ? r2 : r1;
        const int keeper = dropSecond ? r1 : r2;
        // A dropped upper-bound source hands enforcement to its twin.
        for (const WTerm& t : a.terms) {
          VarState& s = vars[static_cast<std::size_t>(t.var)];
          if (s.ubSource == loser) s.ubSource = keeper;
        }
        removeRow(loser, Tableau::slackColumn(n, loser));
        order[k] = keeper;
      }
    }
    if (infeasible) break;

    // (a) Singleton-equality substitution: eliminate v from an Equal
    // row when v has a unit coefficient and the solved-out expression
    // has only nonnegative coefficients and constant, so the implicit
    // v >= 0 is implied by the remaining variables and can be dropped
    // with the row.  Flow-conservation rows x_i = sum d_in are the
    // canonical instance.
    for (int r = 0; r < m && !infeasible && !aborted; ++r) {
      WRow& row = rows[static_cast<std::size_t>(r)];
      if (!row.alive || !integral[static_cast<std::size_t>(r)]) continue;
      if (row.rel != Relation::Equal || row.terms.size() < 2) continue;
      if (pendingHost[static_cast<std::size_t>(r)] >= 0) continue;
      // A fixed-but-not-yet-folded term would leak an eliminated
      // variable into the restore formula, which must only reference
      // variables still free at record time (reverse replay restores
      // later eliminations first).  Let the next round's fold clean the
      // row before it becomes a substitution pivot.
      {
        bool stale = false;
        for (const WTerm& t : row.terms) {
          if (vars[static_cast<std::size_t>(t.var)].eliminated()) {
            stale = true;
            break;
          }
        }
        if (stale) continue;
      }

      int pick = -1;
      long long av = 0;
      for (const WTerm& t : row.terms) {
        const VarState& s = vars[static_cast<std::size_t>(t.var)];
        if (s.eliminated() || s.untouchable || s.hasUb) continue;
        if (t.coeff != 1 && t.coeff != -1) continue;
        // Implied nonnegativity of v = av * (rhs - sum a_j x_j):
        // every coefficient -av*a_j and the constant av*rhs must be
        // >= 0, so v >= 0 follows from the other variables' bounds.
        bool implied = true;
        if (t.coeff * row.rhs < 0) implied = false;
        for (const WTerm& u : row.terms) {
          if (u.var == t.var) continue;
          if (t.coeff * u.coeff > 0) {
            implied = false;
            break;
          }
        }
        if (!implied) continue;
        pick = t.var;
        av = t.coeff;
        break;
      }
      if (pick < 0) continue;

      // Fill-in cap: count the other alive rows carrying v.
      int occurrences = 0;
      for (int i = 0; i < m && occurrences <= kMaxSubstOccurrences; ++i) {
        if (i == r || !rows[static_cast<std::size_t>(i)].alive) continue;
        if (!integral[static_cast<std::size_t>(i)]) continue;
        for (const WTerm& t : rows[static_cast<std::size_t>(i)].terms) {
          if (t.var == pick) {
            ++occurrences;
            break;
          }
        }
      }
      if (occurrences > kMaxSubstOccurrences) continue;

      // Dry-run the rewritten rows in 128-bit; abort on overflow.
      bool ok = true;
      for (int i = 0; i < m && ok; ++i) {
        WRow& other = rows[static_cast<std::size_t>(i)];
        if (i == r || !other.alive || !integral[static_cast<std::size_t>(i)]) {
          continue;
        }
        long long b = 0;
        for (const WTerm& t : other.terms) {
          if (t.var == pick) b = t.coeff;
        }
        if (b == 0) continue;
        const Int128 f = static_cast<Int128>(b) * av;
        for (const WTerm& t : row.terms) {
          if (t.var == pick) continue;
          Int128 cur = 0;
          for (const WTerm& u : other.terms) {
            if (u.var == t.var) cur = u.coeff;
          }
          if (!fits(cur - f * t.coeff)) ok = false;
        }
        if (!fits(static_cast<Int128>(other.rhs) - f * row.rhs)) ok = false;
      }
      if (!ok) {
        aborted = true;
        break;
      }

      // Commit: rewrite every other row, the objective, and record the
      // restore formula v = av*rhs - sum av*a_j x_j.
      for (int i = 0; i < m; ++i) {
        WRow& other = rows[static_cast<std::size_t>(i)];
        if (i == r || !other.alive || !integral[static_cast<std::size_t>(i)]) {
          continue;
        }
        long long b = 0;
        for (const WTerm& t : other.terms) {
          if (t.var == pick) b = t.coeff;
        }
        if (b == 0) continue;
        const long long f = b * av;
        std::vector<WTerm> merged;
        merged.reserve(other.terms.size() + row.terms.size());
        auto it = other.terms.begin();
        auto jt = row.terms.begin();
        while (it != other.terms.end() || jt != row.terms.end()) {
          if (jt == row.terms.end() ||
              (it != other.terms.end() && it->var < jt->var)) {
            if (it->var != pick) merged.push_back(*it);
            ++it;
          } else if (it == other.terms.end() || jt->var < it->var) {
            if (jt->var != pick) {
              merged.push_back(WTerm{jt->var, -f * jt->coeff});
            }
            ++jt;
          } else {
            if (it->var != pick) {
              merged.push_back(WTerm{it->var, it->coeff - f * jt->coeff});
            }
            ++it;
            ++jt;
          }
        }
        merged.erase(std::remove_if(merged.begin(), merged.end(),
                                    [](const WTerm& t) {
                                      return t.coeff == 0;
                                    }),
                     merged.end());
        other.terms = std::move(merged);
        other.rhs -= f * row.rhs;
      }
      const double cv = obj[static_cast<std::size_t>(pick)];
      if (cv != 0.0) {
        for (const WTerm& t : row.terms) {
          if (t.var == pick) continue;
          obj[static_cast<std::size_t>(t.var)] -=
              cv * static_cast<double>(av) * static_cast<double>(t.coeff);
        }
        objConst += cv * static_cast<double>(av) *
                    static_cast<double>(row.rhs);
        obj[static_cast<std::size_t>(pick)] = 0.0;
      }
      Restore restore;
      restore.var = pick;
      restore.constant = static_cast<double>(av) *
                         static_cast<double>(row.rhs);
      for (const WTerm& t : row.terms) {
        if (t.var == pick) continue;
        restore.terms.push_back(
            Term{t.var, -static_cast<double>(av) *
                            static_cast<double>(t.coeff)});
      }
      out.restores_.push_back(std::move(restore));
      vars[static_cast<std::size_t>(pick)].substituted = true;
      ++out.stats_.substitutions;
      removeRow(r, pick);
    }
  }
  out.stats_.propagationRounds = rounds;

  if (aborted) {
    // Integer overflow somewhere: discard everything and report an
    // ineffective reduction so the caller solves the original problem.
    Reduction fresh;
    fresh.origVars_ = n;
    fresh.origRows_ = m;
    fresh.stats_.propagationRounds = rounds;
    return fresh;
  }
  if (infeasible) {
    out.infeasible_ = true;
    return out;
  }

  // Final sweep: fold variables fixed in the last round into any row
  // still carrying them, removing rows that empty out (their exactness
  // checks mirror the loop above).
  for (int r = 0; r < m; ++r) {
    WRow& row = rows[static_cast<std::size_t>(r)];
    if (!row.alive || !integral[static_cast<std::size_t>(r)]) continue;
    std::size_t w = 0;
    Int128 rhs = row.rhs;
    for (const WTerm& t : row.terms) {
      const VarState& s = vars[static_cast<std::size_t>(t.var)];
      if (s.fixed) {
        rhs -= static_cast<Int128>(t.coeff) * s.value;
      } else {
        row.terms[w++] = t;
      }
    }
    if (w != row.terms.size()) {
      row.terms.resize(w);
      if (!fits(rhs)) {
        Reduction fresh;
        fresh.origVars_ = n;
        fresh.origRows_ = m;
        fresh.stats_.propagationRounds = rounds;
        return fresh;
      }
      row.rhs = static_cast<long long>(rhs);
    }
    if (row.terms.empty()) {
      const bool violated =
          (row.rel == Relation::LessEq && row.rhs < 0) ||
          (row.rel == Relation::GreaterEq && row.rhs > 0) ||
          (row.rel == Relation::Equal && row.rhs != 0);
      if (violated) {
        out.infeasible_ = true;
        return out;
      }
      int basic = pendingHost[static_cast<std::size_t>(r)];
      if (basic < 0) {
        basic = row.rel == Relation::Equal ? Tableau::artificialColumn(n, r)
                                           : Tableau::slackColumn(n, r);
      }
      removeRow(r, basic);
    }
  }

  // Fold fixed variables into the objective once, at the end.
  for (int v = 0; v < n; ++v) {
    const VarState& s = vars[static_cast<std::size_t>(v)];
    if (s.fixed && obj[static_cast<std::size_t>(v)] != 0.0) {
      objConst +=
          obj[static_cast<std::size_t>(v)] * static_cast<double>(s.value);
    }
  }

  // Assemble the maps and the reduced problem.
  out.varMap_.assign(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (!vars[static_cast<std::size_t>(v)].eliminated()) {
      out.varMap_[static_cast<std::size_t>(v)] =
          static_cast<int>(out.reducedVars_.size());
      out.reducedVars_.push_back(v);
    }
  }
  out.rowMap_.assign(static_cast<std::size_t>(m), -1);
  out.origRel_.assign(static_cast<std::size_t>(m), Relation::LessEq);
  for (int r = 0; r < m; ++r) {
    out.origRel_[static_cast<std::size_t>(r)] =
        cons[static_cast<std::size_t>(r)].rel;
  }

  for (const int v : out.reducedVars_) {
    out.reduced_.addVar(original.varName(v));
  }
  LinearExpr reducedObj;
  for (const int v : out.reducedVars_) {
    const double c = obj[static_cast<std::size_t>(v)];
    if (c != 0.0) {
      reducedObj.add(out.varMap_[static_cast<std::size_t>(v)], c);
    }
  }
  reducedObj.addConstant(objConst);
  out.reduced_.setObjective(std::move(reducedObj), original.sense());

  for (int r = 0; r < m; ++r) {
    const WRow& row = rows[static_cast<std::size_t>(r)];
    if (!row.alive) continue;
    out.rowMap_[static_cast<std::size_t>(r)] =
        static_cast<int>(out.survivingRows_.size());
    out.survivingRows_.push_back(r);
    LinearExpr expr;
    if (integral[static_cast<std::size_t>(r)]) {
      for (const WTerm& t : row.terms) {
        expr.add(out.varMap_[static_cast<std::size_t>(t.var)],
                 static_cast<double>(t.coeff));
      }
      out.reduced_.addConstraint(std::move(expr), row.rel,
                                 static_cast<double>(row.rhs));
    } else {
      const Constraint& c = cons[static_cast<std::size_t>(r)];
      for (const Term& t : c.expr.terms()) {
        expr.add(out.varMap_[static_cast<std::size_t>(t.var)], t.coeff);
      }
      expr.addConstant(c.expr.constant());
      out.reduced_.addConstraint(std::move(expr), c.rel, c.rhs);
    }
  }

  return out;
}

std::vector<double> Reduction::postsolveValues(
    const std::vector<double>& reducedValues) const {
  std::vector<double> out(static_cast<std::size_t>(origVars_), 0.0);
  for (std::size_t j = 0; j < reducedVars_.size(); ++j) {
    out[static_cast<std::size_t>(reducedVars_[j])] =
        j < reducedValues.size() ? reducedValues[j] : 0.0;
  }
  // Reverse elimination order: a substitution formula only references
  // variables that were still free when it was recorded, and those are
  // restored first.
  for (auto it = restores_.rbegin(); it != restores_.rend(); ++it) {
    double v = it->constant;
    for (const Term& t : it->terms) {
      v += t.coeff * out[static_cast<std::size_t>(t.var)];
    }
    if (v < 0 && v > -1e-7) v = 0;  // same clamp as the tableau readout
    out[static_cast<std::size_t>(it->var)] = v;
  }
  return out;
}

Basis Reduction::postsolveBasis(const Basis& reducedBasis) const {
  const int rn = static_cast<int>(reducedVars_.size());
  Basis out;
  out.numVars = origVars_;
  out.basicCol.assign(static_cast<std::size_t>(origRows_), -1);
  for (std::size_t j = 0; j < survivingRows_.size(); ++j) {
    const int r = survivingRows_[j];
    const int c = j < reducedBasis.basicCol.size()
                      ? reducedBasis.basicCol[j]
                      : -1;
    int mapped = -1;
    if (c >= 0 && c < rn) {
      mapped = reducedVars_[static_cast<std::size_t>(c)];
    } else if (c >= rn &&
               c < rn + 2 * static_cast<int>(survivingRows_.size())) {
      const int k = c - rn;
      const int rr = survivingRows_[static_cast<std::size_t>(k / 2)];
      mapped = k % 2 == 0 ? Tableau::slackColumn(origVars_, rr)
                          : Tableau::artificialColumn(origVars_, rr);
    }
    if (mapped < 0) {
      mapped = origRel_[static_cast<std::size_t>(r)] == Relation::LessEq
                   ? Tableau::slackColumn(origVars_, r)
                   : Tableau::artificialColumn(origVars_, r);
    }
    out.basicCol[static_cast<std::size_t>(r)] = mapped;
  }
  for (int r = 0; r < origRows_; ++r) {
    if (out.basicCol[static_cast<std::size_t>(r)] < 0) {
      out.basicCol[static_cast<std::size_t>(r)] =
          removedRowBasic_[static_cast<std::size_t>(r)];
    }
  }
  return out;
}

std::optional<Basis> Reduction::translateBasis(
    const Basis& originalBasis) const {
  if (originalBasis.numVars != origVars_) return std::nullopt;
  const int rn = static_cast<int>(reducedVars_.size());
  const int rm = static_cast<int>(survivingRows_.size());
  Basis out;
  out.numVars = rn;
  out.basicCol.assign(static_cast<std::size_t>(rm), -1);
  std::vector<char> used(static_cast<std::size_t>(rn + 2 * rm), 0);
  for (int j = 0; j < rm; ++j) {
    const int r = survivingRows_[static_cast<std::size_t>(j)];
    const int c = r < static_cast<int>(originalBasis.basicCol.size())
                      ? originalBasis.basicCol[static_cast<std::size_t>(r)]
                      : -1;
    int mapped = -1;
    if (c >= 0 && c < origVars_) {
      mapped = varMap_[static_cast<std::size_t>(c)];  // -1 if eliminated
    } else if (c >= origVars_ && c < origVars_ + 2 * origRows_) {
      const int k = c - origVars_;
      const int rr = k / 2;
      const bool slack = k % 2 == 0;
      if (rowMap_[static_cast<std::size_t>(rr)] >= 0) {
        const Relation rel = origRel_[static_cast<std::size_t>(rr)];
        const bool exists =
            slack ? rel != Relation::Equal : rel != Relation::LessEq;
        if (exists) {
          mapped = rn + 2 * rowMap_[static_cast<std::size_t>(rr)] +
                   (slack ? 0 : 1);
        }
      }
    }
    if (mapped < 0) {
      // Natural cold-start basic for the reduced row: slack for <=,
      // artificial otherwise (mirrors the tableau constructor).
      const Relation rel = origRel_[static_cast<std::size_t>(r)];
      mapped = rel == Relation::LessEq ? rn + 2 * j : rn + 2 * j + 1;
    }
    if (used[static_cast<std::size_t>(mapped)]) return std::nullopt;
    used[static_cast<std::size_t>(mapped)] = 1;
    out.basicCol[static_cast<std::size_t>(j)] = mapped;
  }
  return out;
}

}  // namespace cinderella::lp
