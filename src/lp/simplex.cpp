#include "cinderella/lp/simplex.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "cinderella/support/error.hpp"
#include "cinderella/support/fault_injector.hpp"
#include "cinderella/support/metrics_sink.hpp"

namespace cinderella::lp {

const char* solveStatusStr(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal:
      return "optimal";
    case SolveStatus::Infeasible:
      return "infeasible";
    case SolveStatus::Unbounded:
      return "unbounded";
    case SolveStatus::IterationLimit:
      return "iteration-limit";
  }
  return "?";
}

const char* pivotRuleStr(PivotRule rule) {
  switch (rule) {
    case PivotRule::Dantzig:
      return "dantzig";
    case PivotRule::Bland:
      return "bland";
  }
  return "?";
}

namespace {

// Dense tableau in standard form:
//   rows 0..m-1: constraint rows (all equalities after slack insertion)
//   row m:       objective row (reduced costs; maximization)
// Column layout: [original | slack/surplus | artificial | rhs].
class Tableau {
 public:
  Tableau(const Problem& p, const SimplexOptions& opt)
      : opt_(opt), numOriginal_(p.numVars()) {
    const auto& cons = p.constraints();
    m_ = static_cast<int>(cons.size());

    // Count auxiliary columns.
    int numSlack = 0;
    int numArtificial = 0;
    for (const auto& c : cons) {
      const bool rhsNeg = (c.rhs < 0);
      Relation rel = c.rel;
      if (rhsNeg && rel != Relation::Equal) {
        rel = (rel == Relation::LessEq) ? Relation::GreaterEq
                                        : Relation::LessEq;
      }
      if (rel != Relation::Equal) ++numSlack;
      // `<=` rows get a slack that can serve as the initial basis; `>=`
      // and `=` rows need an artificial variable.
      if (rel != Relation::LessEq) ++numArtificial;
    }
    slackBegin_ = numOriginal_;
    artificialBegin_ = slackBegin_ + numSlack;
    n_ = artificialBegin_ + numArtificial;
    rhsCol_ = n_;

    a_.assign(static_cast<std::size_t>(m_ + 1) * (n_ + 1), 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int nextSlack = slackBegin_;
    int nextArtificial = artificialBegin_;
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = cons[static_cast<std::size_t>(i)];
      double sign = 1.0;
      Relation rel = c.rel;
      if (c.rhs < 0) {
        sign = -1.0;
        if (rel == Relation::LessEq) {
          rel = Relation::GreaterEq;
        } else if (rel == Relation::GreaterEq) {
          rel = Relation::LessEq;
        }
      }
      for (const auto& t : c.expr.terms()) at(i, t.var) = sign * t.coeff;
      at(i, rhsCol_) = sign * c.rhs;

      if (rel == Relation::LessEq) {
        at(i, nextSlack) = 1.0;
        basis_[static_cast<std::size_t>(i)] = nextSlack;
        ++nextSlack;
      } else if (rel == Relation::GreaterEq) {
        at(i, nextSlack) = -1.0;
        ++nextSlack;
        at(i, nextArtificial) = 1.0;
        basis_[static_cast<std::size_t>(i)] = nextArtificial;
        ++nextArtificial;
      } else {
        at(i, nextArtificial) = 1.0;
        basis_[static_cast<std::size_t>(i)] = nextArtificial;
        ++nextArtificial;
      }
    }
  }

  /// Runs both phases.  On Optimal, fills `solution` values/objective for
  /// a maximization objective given by `objective` (dense, size n of
  /// original variables) plus `constant`.
  Solution run(const std::vector<double>& objective, double constant) {
    Solution solution;

    if (artificialBegin_ < n_) {
      // Phase 1: maximize -(sum of artificials).
      setObjectiveRow([&](int col) {
        return (col >= artificialBegin_ && col < n_) ? -1.0 : 0.0;
      });
      const SolveStatus st = optimize(/*allowArtificialEntering=*/true);
      if (st == SolveStatus::IterationLimit) {
        solution.status = st;
        solution.pivots = pivots_;
        return solution;
      }
      CIN_REQUIRE(st != SolveStatus::Unbounded);  // phase-1 obj is <= 0
      if (objectiveValue() < -opt_.tol) {
        solution.status = SolveStatus::Infeasible;
        solution.pivots = pivots_;
        return solution;
      }
      if (!evictArtificials()) {
        // Rows whose artificial could not be pivoted out are redundant
        // (all real coefficients zero); they can be ignored because their
        // rhs is zero at this point.
      }
    }

    // Phase 2: the real objective.
    setObjectiveRow([&](int col) {
      return (col < numOriginal_) ? objective[static_cast<std::size_t>(col)]
                                  : 0.0;
    });
    const SolveStatus st = optimize(/*allowArtificialEntering=*/false);
    solution.status = st;
    solution.pivots = pivots_;
    if (st != SolveStatus::Optimal) return solution;

    solution.values.assign(static_cast<std::size_t>(numOriginal_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < numOriginal_) {
        solution.values[static_cast<std::size_t>(b)] = at(i, rhsCol_);
      }
    }
    // Clamp tiny negatives introduced by rounding.
    for (double& v : solution.values) {
      if (v < 0 && v > -opt_.tol) v = 0;
    }
    solution.objective = objectiveValue() + constant;
    return solution;
  }

 private:
  double& at(int row, int col) {
    return a_[static_cast<std::size_t>(row) * (n_ + 1) +
              static_cast<std::size_t>(col)];
  }
  [[nodiscard]] double get(int row, int col) const {
    return a_[static_cast<std::size_t>(row) * (n_ + 1) +
              static_cast<std::size_t>(col)];
  }

  // The objective row is kept as (c_B B^-1 A - c); after pricing out the
  // basis its rhs entry accumulates c_B B^-1 b, which IS the objective.
  [[nodiscard]] double objectiveValue() const { return get(m_, rhsCol_); }

  /// Installs the objective row for `coeff(col)` and prices out the
  /// current basis so reduced costs are consistent.
  template <typename CoeffFn>
  void setObjectiveRow(CoeffFn coeff) {
    for (int j = 0; j <= n_; ++j) at(m_, j) = 0.0;
    for (int j = 0; j < n_; ++j) at(m_, j) = -coeff(j);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double c = coeff(b);
      if (c == 0.0) continue;
      for (int j = 0; j <= n_; ++j) at(m_, j) += c * get(i, j);
    }
  }

  void pivot(int row, int col) {
    // Fault-injection seam: emulate a numeric breakdown mid-solve.  The
    // analyzer's degradation ladder catches this as a SolverError.
    if (support::FaultInjector* const injector = support::faultInjector()) {
      if (injector->shouldFault(support::FaultSite::LpPivot)) {
        throw InjectedFaultError("injected fault at simplex pivot");
      }
    }
    const double p = get(row, col);
    CIN_REQUIRE(std::abs(p) > opt_.pivotTol);
    const double inv = 1.0 / p;
    for (int j = 0; j <= n_; ++j) at(row, j) *= inv;
    at(row, col) = 1.0;
    for (int i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const double factor = get(i, col);
      if (factor == 0.0) continue;
      for (int j = 0; j <= n_; ++j) at(i, j) -= factor * get(row, j);
      at(i, col) = 0.0;
    }
    basis_[static_cast<std::size_t>(row)] = col;
    ++pivots_;
  }

  SolveStatus optimize(bool allowArtificialEntering) {
    const int colLimit = allowArtificialEntering ? n_ : artificialBegin_;
    while (true) {
      if (pivots_ >= opt_.maxPivots) return SolveStatus::IterationLimit;
      // Entering column per the configured rule.  Dantzig: most negative
      // reduced cost (smallest index on ties, for determinism).  Bland:
      // smallest-index column with negative reduced cost.
      int enter = -1;
      if (opt_.pivotRule == PivotRule::Dantzig) {
        double best = -opt_.tol;
        for (int j = 0; j < colLimit; ++j) {
          const double rc = get(m_, j);
          if (rc < best) {
            best = rc;
            enter = j;
          }
        }
      } else {
        for (int j = 0; j < colLimit; ++j) {
          if (get(m_, j) < -opt_.tol) {
            enter = j;
            break;
          }
        }
      }
      if (enter < 0) return SolveStatus::Optimal;

      // Ratio test; Bland tie-break on the leaving basic variable index.
      int leave = -1;
      double bestRatio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double aij = get(i, enter);
        if (aij <= opt_.pivotTol) continue;
        const double ratio = get(i, rhsCol_) / aij;
        if (ratio < bestRatio - opt_.tol ||
            (ratio < bestRatio + opt_.tol &&
             (leave < 0 || basis_[static_cast<std::size_t>(i)] <
                               basis_[static_cast<std::size_t>(leave)]))) {
          bestRatio = ratio;
          leave = i;
        }
      }
      if (leave < 0) return SolveStatus::Unbounded;
      pivot(leave, enter);
    }
  }

  /// After phase 1, pivots zero-level artificial variables out of the
  /// basis wherever a nonzero real coefficient exists in their row.
  /// Returns false when some artificial stayed basic (redundant row).
  bool evictArtificials() {
    bool allEvicted = true;
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < artificialBegin_) continue;
      int enter = -1;
      for (int j = 0; j < artificialBegin_; ++j) {
        if (std::abs(get(i, j)) > opt_.pivotTol) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) {
        pivot(i, enter);
      } else {
        allEvicted = false;
      }
    }
    return allEvicted;
  }

  SimplexOptions opt_;
  int numOriginal_ = 0;
  int m_ = 0;
  int n_ = 0;
  int rhsCol_ = 0;
  int slackBegin_ = 0;
  int artificialBegin_ = 0;
  std::vector<double> a_;
  std::vector<int> basis_;
  int pivots_ = 0;
};

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  // Observability is off on the default path: one relaxed atomic load.
  support::MetricsSink* const sink = support::metricsSink();
  const auto solveStart = sink != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};

  // Normalize to maximization; flip back at the end.
  const bool minimize = (problem.sense() == Sense::Minimize);
  std::vector<double> objective(static_cast<std::size_t>(problem.numVars()),
                                0.0);
  for (const auto& t : problem.objective().terms()) {
    objective[static_cast<std::size_t>(t.var)] =
        minimize ? -t.coeff : t.coeff;
  }
  const double constant =
      minimize ? -problem.objective().constant() : problem.objective().constant();

  Tableau tableau(problem, options);
  Solution solution = tableau.run(objective, constant);
  if (solution.status == SolveStatus::IterationLimit &&
      options.pivotRule == PivotRule::Dantzig && options.blandRetry) {
    // Dantzig exhausted its budget — on degenerate IPET systems that is
    // usually cycling, not genuine size.  Re-solve once under Bland's
    // rule, which cannot cycle; only its failure is reported upward.
    SimplexOptions retryOptions = options;
    retryOptions.pivotRule = PivotRule::Bland;
    const int dantzigPivots = solution.pivots;
    Tableau retryTableau(problem, retryOptions);
    solution = retryTableau.run(objective, constant);
    solution.pivots += dantzigPivots;
    solution.blandRestart = true;
    if (sink != nullptr) sink->add("lp.blandRestarts", 1);
  }
  if (solution.status == SolveStatus::Optimal && minimize) {
    solution.objective = -solution.objective;
  }

  if (sink != nullptr) {
    sink->add("lp.solves", 1);
    sink->observe("lp.pivots", solution.pivots);
    sink->observe("lp.micros",
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - solveStart)
                      .count());
  }
  return solution;
}

}  // namespace cinderella::lp
