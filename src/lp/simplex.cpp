#include "cinderella/lp/simplex.hpp"

#include <chrono>
#include <vector>

#include "cinderella/lp/tableau.hpp"
#include "cinderella/support/metrics_sink.hpp"

namespace cinderella::lp {

const char* solveStatusStr(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal:
      return "optimal";
    case SolveStatus::Infeasible:
      return "infeasible";
    case SolveStatus::Unbounded:
      return "unbounded";
    case SolveStatus::IterationLimit:
      return "iteration-limit";
  }
  return "?";
}

const char* pivotRuleStr(PivotRule rule) {
  switch (rule) {
    case PivotRule::Dantzig:
      return "dantzig";
    case PivotRule::Bland:
      return "bland";
  }
  return "?";
}

Solution solveWarm(const Problem& problem, const SimplexOptions& options,
                   const Basis* warmBasis, Basis* finalBasis) {
  // Observability is off on the default path: one relaxed atomic load.
  support::MetricsSink* const sink = support::metricsSink();
  const auto solveStart = sink != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};

  // Normalize to maximization; flip back at the end.
  const bool minimize = (problem.sense() == Sense::Minimize);
  std::vector<double> objective(static_cast<std::size_t>(problem.numVars()),
                                0.0);
  for (const auto& t : problem.objective().terms()) {
    objective[static_cast<std::size_t>(t.var)] =
        minimize ? -t.coeff : t.coeff;
  }
  const double constant = minimize ? -problem.objective().constant()
                                   : problem.objective().constant();

  Solution solution;
  int wastedWarmPivots = 0;
  int wastedInstallPivots = 0;
  bool warmFailed = false;
  bool solved = false;
  if (warmBasis != nullptr && !warmBasis->empty()) {
    Tableau warm(problem, options);
    if (std::optional<Solution> warmSolution =
            warm.runWarm(objective, constant, *warmBasis)) {
      solution = std::move(*warmSolution);
      if (finalBasis != nullptr &&
          solution.status == SolveStatus::Optimal) {
        *finalBasis = warm.extractBasis();
      }
      solved = true;
    } else {
      // The basis was unusable; the cold re-solve below still pays for
      // the pivots spent discovering that.
      wastedWarmPivots = warm.totalPivots();
      wastedInstallPivots = warm.installPivots();
      warmFailed = true;
    }
  }

  if (!solved) {
    Tableau cold(problem, options);
    solution = cold.run(objective, constant);
    solution.pivots += wastedWarmPivots;
    solution.installPivots += wastedInstallPivots;
    solution.warmFailed = warmFailed;
    if (finalBasis != nullptr && solution.status == SolveStatus::Optimal) {
      *finalBasis = cold.extractBasis();
    }
  }
  if (solution.status == SolveStatus::Optimal && minimize) {
    solution.objective = -solution.objective;
  }

  if (sink != nullptr) {
    sink->add("lp.solves", 1);
    if (solution.blandRestart) sink->add("lp.blandRestarts", 1);
    if (solution.warmUsed) sink->add("lp.warmStarts", 1);
    if (solution.warmFailed) sink->add("lp.warmFailures", 1);
    sink->observe("lp.pivots", solution.pivots);
    if (solution.dualPivots > 0) {
      sink->observe("lp.dualPivots", solution.dualPivots);
    }
    if (solution.installPivots > 0) {
      sink->observe("lp.installPivots", solution.installPivots);
    }
    sink->observe("lp.micros",
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - solveStart)
                      .count());
  }
  return solution;
}

Solution solve(const Problem& problem, const SimplexOptions& options) {
  return solveWarm(problem, options, nullptr, nullptr);
}

}  // namespace cinderella::lp
