#include "cinderella/lp/simplex.hpp"

#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "cinderella/lp/presolve.hpp"
#include "cinderella/lp/tableau.hpp"
#include "cinderella/support/metrics_sink.hpp"

namespace cinderella::lp {

const char* solveStatusStr(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal:
      return "optimal";
    case SolveStatus::Infeasible:
      return "infeasible";
    case SolveStatus::Unbounded:
      return "unbounded";
    case SolveStatus::IterationLimit:
      return "iteration-limit";
  }
  return "?";
}

const char* pivotRuleStr(PivotRule rule) {
  switch (rule) {
    case PivotRule::Dantzig:
      return "dantzig";
    case PivotRule::Bland:
      return "bland";
    case PivotRule::Devex:
      return "devex";
  }
  return "?";
}

namespace {

/// Dense maximization objective (negated when the problem minimizes)
/// plus its constant, for a given problem's variable space.
struct DenseObjective {
  std::vector<double> coeffs;
  double constant = 0.0;
};

DenseObjective maximizedObjective(const Problem& problem) {
  const bool minimize = (problem.sense() == Sense::Minimize);
  DenseObjective out;
  out.coeffs.assign(static_cast<std::size_t>(problem.numVars()), 0.0);
  for (const auto& t : problem.objective().terms()) {
    out.coeffs[static_cast<std::size_t>(t.var)] =
        minimize ? -t.coeff : t.coeff;
  }
  out.constant = minimize ? -problem.objective().constant()
                          : problem.objective().constant();
  return out;
}

void reportToSink(support::MetricsSink* sink, const Solution& solution,
                  std::chrono::steady_clock::time_point solveStart) {
  if (sink == nullptr) return;
  sink->add("lp.solves", 1);
  if (solution.blandRestart) sink->add("lp.blandRestarts", 1);
  if (solution.warmUsed) sink->add("lp.warmStarts", 1);
  if (solution.warmFailed) sink->add("lp.warmFailures", 1);
  sink->observe("lp.pivots", solution.pivots);
  if (solution.dualPivots > 0) {
    sink->observe("lp.dualPivots", solution.dualPivots);
  }
  if (solution.installPivots > 0) {
    sink->observe("lp.installPivots", solution.installPivots);
  }
  if (solution.devexPivots > 0) {
    sink->observe("lp.devexPivots", solution.devexPivots);
  }
  if (solution.presolve.rowsRemoved > 0) {
    sink->observe("lp.presolveRowsRemoved", solution.presolve.rowsRemoved);
  }
  if (solution.presolve.colsFixed + solution.presolve.substitutions > 0) {
    sink->observe("lp.presolveColsRemoved",
                  solution.presolve.colsFixed +
                      solution.presolve.substitutions);
  }
  sink->observe("lp.micros",
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - solveStart)
                    .count());
}

}  // namespace

Solution solveWarm(const Problem& problem, const SimplexOptions& options,
                   const Basis* warmBasis, Basis* finalBasis) {
  // Observability is off on the default path: one relaxed atomic load.
  support::MetricsSink* const sink = support::metricsSink();
  const auto solveStart = sink != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  const bool minimize = (problem.sense() == Sense::Minimize);

  // Presolve: shrink the problem before any tableau is built.  The
  // reduction is dropped again when it removed nothing (the copy would
  // only add overhead) and short-circuits exact infeasibility.
  std::optional<Reduction> reduction;
  PresolveStats presolveStats;
  if (options.presolve) {
    Reduction r = Reduction::reduce(problem, options);
    presolveStats = r.stats();
    if (r.provedInfeasible()) {
      Solution solution;
      solution.status = SolveStatus::Infeasible;
      solution.presolve = presolveStats;
      reportToSink(sink, solution, solveStart);
      return solution;
    }
    if (r.effective()) reduction.emplace(std::move(r));
  }

  const Problem& effective = reduction ? reduction->reduced() : problem;
  const DenseObjective objective = maximizedObjective(effective);

  Solution solution;
  int wastedWarmPivots = 0;
  int wastedInstallPivots = 0;
  int wastedDevexPivots = 0;
  bool warmFailed = false;
  bool solved = false;
  bool solvedOnReduced = false;

  if (warmBasis != nullptr && !warmBasis->empty()) {
    // Warm ladder: reduced tableau with the translated basis first,
    // then the original tableau with the basis as supplied.  Only when
    // both warm attempts fail does the solve fall back cold — so
    // presolve never turns a previously-working warm start into a
    // failure.
    if (reduction) {
      if (std::optional<Basis> translated =
              reduction->translateBasis(*warmBasis)) {
        Tableau warm(effective, options);
        if (std::optional<Solution> warmSolution =
                warm.runWarm(objective.coeffs, objective.constant,
                             *translated)) {
          solution = std::move(*warmSolution);
          solution.devexPivots = warm.devexPivots();
          solvedOnReduced = true;
          solved = true;
          if (finalBasis != nullptr &&
              solution.status == SolveStatus::Optimal) {
            *finalBasis = reduction->postsolveBasis(warm.extractBasis());
          }
        } else {
          wastedWarmPivots += warm.totalPivots();
          wastedInstallPivots += warm.installPivots();
          wastedDevexPivots += warm.devexPivots();
        }
      }
    }
    if (!solved && reduction) {
      const DenseObjective origObjective = maximizedObjective(problem);
      Tableau warm(problem, options);
      if (std::optional<Solution> warmSolution = warm.runWarm(
              origObjective.coeffs, origObjective.constant, *warmBasis)) {
        solution = std::move(*warmSolution);
        solution.pivots += wastedWarmPivots;
        solution.installPivots += wastedInstallPivots;
        solution.devexPivots = warm.devexPivots() + wastedDevexPivots;
        solved = true;
        if (finalBasis != nullptr &&
            solution.status == SolveStatus::Optimal) {
          *finalBasis = warm.extractBasis();
        }
      } else {
        wastedWarmPivots += warm.totalPivots();
        wastedInstallPivots += warm.installPivots();
        wastedDevexPivots += warm.devexPivots();
        warmFailed = true;
      }
    } else if (!solved) {
      Tableau warm(problem, options);
      if (std::optional<Solution> warmSolution = warm.runWarm(
              objective.coeffs, objective.constant, *warmBasis)) {
        solution = std::move(*warmSolution);
        solution.devexPivots = warm.devexPivots();
        solved = true;
        if (finalBasis != nullptr &&
            solution.status == SolveStatus::Optimal) {
          *finalBasis = warm.extractBasis();
        }
      } else {
        // The basis was unusable; the cold re-solve below still pays
        // for the pivots spent discovering that.
        wastedWarmPivots += warm.totalPivots();
        wastedInstallPivots += warm.installPivots();
        wastedDevexPivots += warm.devexPivots();
        warmFailed = true;
      }
    }
  }

  if (!solved) {
    std::optional<Tableau> cold;
    cold.emplace(effective, options);
    solution = cold->run(objective.coeffs, objective.constant);
    solution.devexPivots = cold->devexPivots();
    if (solution.status == SolveStatus::IterationLimit &&
        options.blandRetry) {
      // The configured rule exhausted its budget or stalled on a
      // degenerate vertex.  Epsilon-step pivots through near-singular
      // elements erode the tableau numerically, so continuing from the
      // stalled basis is hopeless — re-solve from scratch under
      // progressively more conservative rules: Dantzig (cheap pricing,
      // rarely stalls on IPET systems), then Bland (cannot cycle).
      // Only the last rung's failure is reported upward.
      for (const PivotRule retryRule :
           {PivotRule::Dantzig, PivotRule::Bland}) {
        if (retryRule == options.pivotRule) continue;
        const int wastedPivots = solution.pivots;
        const int wastedDevex = solution.devexPivots;
        SimplexOptions retryOptions = options;
        retryOptions.pivotRule = retryRule;
        cold.emplace(effective, retryOptions);
        solution = cold->run(objective.coeffs, objective.constant);
        solution.pivots += wastedPivots;
        solution.devexPivots = wastedDevex;
        solution.blandRestart = true;
        if (solution.status != SolveStatus::IterationLimit) break;
      }
    }
    solution.pivots += wastedWarmPivots;
    solution.installPivots += wastedInstallPivots;
    solution.devexPivots += wastedDevexPivots;
    solution.warmFailed = warmFailed;
    solvedOnReduced = reduction.has_value();
    if (finalBasis != nullptr && solution.status == SolveStatus::Optimal) {
      *finalBasis = reduction
                        ? reduction->postsolveBasis(cold->extractBasis())
                        : cold->extractBasis();
    }
  }

  if (solvedOnReduced && solution.status == SolveStatus::Optimal) {
    solution.values = reduction->postsolveValues(solution.values);
  }
  solution.presolve = presolveStats;
  if (solution.status == SolveStatus::Optimal && minimize) {
    solution.objective = -solution.objective;
  }

  reportToSink(sink, solution, solveStart);
  return solution;
}

Solution solve(const Problem& problem, const SimplexOptions& options) {
  return solveWarm(problem, options, nullptr, nullptr);
}

}  // namespace cinderella::lp
