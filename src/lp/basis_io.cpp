#include "cinderella/lp/basis_io.hpp"

#include <cstdint>

namespace cinderella::lp {

namespace {

constexpr char kMagic[4] = {'C', 'B', 'A', 'S'};
constexpr std::uint32_t kVersion = 1;
/// Sanity cap on row counts and column ids: IPET systems are thousands
/// of rows at the very largest, so anything near 2^30 is corruption.
constexpr std::uint32_t kSaneLimit = 1u << 30;

void appendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

bool readU32(std::string_view bytes, std::size_t* offset, std::uint32_t* v) {
  if (bytes.size() - *offset < 4) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes[*offset + i]))
           << (8 * i);
  }
  *offset += 4;
  *v = out;
  return true;
}

}  // namespace

std::string serializeBasis(const Basis& basis) {
  std::string out;
  out.reserve(16 + 4 * basis.basicCol.size());
  out.append(kMagic, sizeof(kMagic));
  appendU32(&out, kVersion);
  appendU32(&out, static_cast<std::uint32_t>(basis.numVars));
  appendU32(&out, static_cast<std::uint32_t>(basis.basicCol.size()));
  for (const int col : basis.basicCol) {
    appendU32(&out, static_cast<std::uint32_t>(col));
  }
  return out;
}

std::optional<Basis> parseBasis(std::string_view bytes) {
  if (bytes.size() < 16 ||
      std::string_view(bytes.data(), 4) != std::string_view(kMagic, 4)) {
    return std::nullopt;
  }
  std::size_t offset = 4;
  std::uint32_t version = 0;
  std::uint32_t numVars = 0;
  std::uint32_t rows = 0;
  if (!readU32(bytes, &offset, &version) || version != kVersion ||
      !readU32(bytes, &offset, &numVars) || numVars >= kSaneLimit ||
      !readU32(bytes, &offset, &rows) || rows >= kSaneLimit) {
    return std::nullopt;
  }
  if (bytes.size() - offset != 4 * static_cast<std::size_t>(rows)) {
    return std::nullopt;
  }
  Basis basis;
  basis.numVars = static_cast<int>(numVars);
  basis.basicCol.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    std::uint32_t col = 0;
    if (!readU32(bytes, &offset, &col) || col >= kSaneLimit) {
      return std::nullopt;
    }
    basis.basicCol.push_back(static_cast<int>(col));
  }
  return basis;
}

}  // namespace cinderella::lp
