#include "cinderella/lp/tableau.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cinderella/support/error.hpp"
#include "cinderella/support/fault_injector.hpp"

namespace cinderella::lp {

namespace {

/// Entries whose magnitude falls below this after a row combination are
/// dropped from the sparse row.  Well below pivotTol, so a dropped entry
/// can never have been a pivot candidate.
constexpr double kDropTol = 1e-12;

}  // namespace

double Tableau::rowCoeff(const SparseRow& row, int col) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), col,
      [](const Entry& e, int c) { return e.col < c; });
  return (it != row.end() && it->col == col) ? it->val : 0.0;
}

void Tableau::setRowCoeff(SparseRow* row, int col, double val) {
  const auto it = std::lower_bound(
      row->begin(), row->end(), col,
      [](const Entry& e, int c) { return e.col < c; });
  if (it != row->end() && it->col == col) {
    if (val == 0.0) {
      row->erase(it);
    } else {
      it->val = val;
    }
  } else if (val != 0.0) {
    row->insert(it, Entry{col, val});
  }
}

void Tableau::subtractScaled(SparseRow* dst, double factor,
                             const SparseRow& src, int eliminateCol) {
  scratch_.clear();
  auto a = dst->begin();
  const auto aEnd = dst->end();
  auto b = src.begin();
  const auto bEnd = src.end();
  while (a != aEnd || b != bEnd) {
    if (b == bEnd || (a != aEnd && a->col < b->col)) {
      if (a->col != eliminateCol) scratch_.push_back(*a);
      ++a;
    } else if (a == aEnd || b->col < a->col) {
      if (b->col != eliminateCol) {
        const double v = -factor * b->val;
        if (std::abs(v) > kDropTol) scratch_.push_back(Entry{b->col, v});
      }
      ++b;
    } else {
      if (a->col != eliminateCol) {
        const double v = a->val - factor * b->val;
        if (std::abs(v) > kDropTol) scratch_.push_back(Entry{a->col, v});
      }
      ++a;
      ++b;
    }
  }
  dst->swap(scratch_);
}

Tableau::Tableau(const Problem& p, const SimplexOptions& opt)
    : opt_(opt), rule_(opt.pivotRule), pivotBudget_(opt.maxPivots),
      numOriginal_(p.numVars()) {
  const auto& cons = p.constraints();
  m_ = static_cast<int>(cons.size());
  numCols_ = numOriginal_ + 2 * m_;

  rows_.resize(static_cast<std::size_t>(m_));
  rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  obj_.assign(static_cast<std::size_t>(numCols_), 0.0);
  colExists_.assign(static_cast<std::size_t>(numCols_), 0);
  basis_.assign(static_cast<std::size_t>(m_), -1);
  for (int v = 0; v < numOriginal_; ++v) {
    colExists_[static_cast<std::size_t>(v)] = 1;
  }

  for (int i = 0; i < m_; ++i) {
    const Constraint& c = cons[static_cast<std::size_t>(i)];
    double sign = 1.0;
    Relation rel = c.rel;
    if (c.rhs < 0) {
      sign = -1.0;
      if (rel == Relation::LessEq) {
        rel = Relation::GreaterEq;
      } else if (rel == Relation::GreaterEq) {
        rel = Relation::LessEq;
      }
    }

    SparseRow& row = rows_[static_cast<std::size_t>(i)];
    for (const auto& t : c.expr.terms()) {
      setRowCoeff(&row, t.var, sign * t.coeff);
    }
    rhs_[static_cast<std::size_t>(i)] = sign * c.rhs;

    const int slack = slackColumn(numOriginal_, i);
    const int artificial = artificialColumn(numOriginal_, i);
    if (rel == Relation::LessEq) {
      setRowCoeff(&row, slack, 1.0);
      colExists_[static_cast<std::size_t>(slack)] = 1;
      basis_[static_cast<std::size_t>(i)] = slack;
    } else if (rel == Relation::GreaterEq) {
      setRowCoeff(&row, slack, -1.0);
      colExists_[static_cast<std::size_t>(slack)] = 1;
      setRowCoeff(&row, artificial, 1.0);
      colExists_[static_cast<std::size_t>(artificial)] = 1;
      basis_[static_cast<std::size_t>(i)] = artificial;
    } else {
      setRowCoeff(&row, artificial, 1.0);
      colExists_[static_cast<std::size_t>(artificial)] = 1;
      basis_[static_cast<std::size_t>(i)] = artificial;
    }
  }
}

double Tableau::rowRhs(int row) const {
  return rhs_[static_cast<std::size_t>(row)];
}

int Tableau::basicColumn(int row) const {
  return basis_[static_cast<std::size_t>(row)];
}

Basis Tableau::extractBasis() const {
  Basis b;
  b.numVars = numOriginal_;
  b.basicCol = basis_;
  return b;
}

void Tableau::pivot(int row, int col) {
  // Fault-injection seam: emulate a numeric breakdown mid-solve.  The
  // analyzer's degradation ladder catches this as a SolverError.
  if (support::FaultInjector* const injector = support::faultInjector()) {
    if (injector->shouldFault(support::FaultSite::LpPivot)) {
      throw InjectedFaultError("injected fault at simplex pivot");
    }
  }
  SparseRow& pr = rows_[static_cast<std::size_t>(row)];
  const double p = rowCoeff(pr, col);
  CIN_REQUIRE(std::abs(p) > opt_.pivotTol);
  const double inv = 1.0 / p;
  for (Entry& e : pr) e.val *= inv;
  setRowCoeff(&pr, col, 1.0);
  rhs_[static_cast<std::size_t>(row)] *= inv;

  for (int i = 0; i < m_; ++i) {
    if (i == row) continue;
    SparseRow& target = rows_[static_cast<std::size_t>(i)];
    const double factor = rowCoeff(target, col);
    if (factor == 0.0) continue;
    subtractScaled(&target, factor, pr, col);
    rhs_[static_cast<std::size_t>(i)] -=
        factor * rhs_[static_cast<std::size_t>(row)];
  }

  const double objFactor = obj_[static_cast<std::size_t>(col)];
  if (objFactor != 0.0) {
    for (const Entry& e : pr) {
      obj_[static_cast<std::size_t>(e.col)] -= objFactor * e.val;
    }
    obj_[static_cast<std::size_t>(col)] = 0.0;
    objRhs_ -= objFactor * rhs_[static_cast<std::size_t>(row)];
  }

  basis_[static_cast<std::size_t>(row)] = col;
}

template <typename CoeffFn>
void Tableau::setObjectiveRow(CoeffFn coeff) {
  std::fill(obj_.begin(), obj_.end(), 0.0);
  objRhs_ = 0.0;
  for (int j = 0; j < numCols_; ++j) {
    if (colExists_[static_cast<std::size_t>(j)]) {
      obj_[static_cast<std::size_t>(j)] = -coeff(j);
    }
  }
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    const double c = coeff(b);
    if (c == 0.0) continue;
    for (const Entry& e : rows_[static_cast<std::size_t>(i)]) {
      obj_[static_cast<std::size_t>(e.col)] += c * e.val;
    }
    objRhs_ += c * rhs_[static_cast<std::size_t>(i)];
  }
}

SolveStatus Tableau::optimize(bool allowArtificialEntering) {
  // Fresh Devex reference framework per optimize() call: every weight
  // starts at 1 (so the first pick is plain Dantzig) and grows with the
  // pivot-row update below, steering later picks away from columns that
  // produced long steps through degenerate vertices.
  if (rule_ == PivotRule::Devex) {
    devexWeights_.assign(static_cast<std::size_t>(numCols_), 1.0);
  }
  // Anti-stalling guard: IPET tableaus are massively degenerate (every
  // flow row is an equality threaded through x0 = 1), and Devex/Dantzig
  // can orbit a degenerate vertex for the whole pivot budget making
  // zero- or epsilon-length steps while numeric drift accumulates.
  // Track the objective: a run of pivots with no measurable improvement
  // longer than any plausible honest degenerate stretch reports
  // IterationLimit immediately instead of burning the budget first, and
  // the solver re-solves on a fresh tableau under the next rule of its
  // retry ladder.  The limit scales with m so big tableaus get
  // proportionally more slack; every wasted stall pivot is paid at full
  // tableau-update cost, so the limit errs low.
  const int stallLimit = std::max(500, m_);
  int pivotsSinceProgress = 0;
  double lastObjective = objectiveValue();
  while (true) {
    if (pivots_ >= pivotBudget_) return SolveStatus::IterationLimit;
    // Entering column per the configured rule.  Devex: largest
    // rc^2/weight (smallest index on ties).  Dantzig: most negative
    // reduced cost (smallest index on ties).  Bland: smallest-index
    // column with negative reduced cost.
    int enter = -1;
    if (rule_ == PivotRule::Devex) {
      double bestScore = 0.0;
      for (int j = 0; j < numCols_; ++j) {
        if (!colExists_[static_cast<std::size_t>(j)]) continue;
        if (!allowArtificialEntering && isArtificialColumn(j)) continue;
        const double rc = obj_[static_cast<std::size_t>(j)];
        if (rc >= -opt_.tol) continue;
        const double score =
            rc * rc / devexWeights_[static_cast<std::size_t>(j)];
        if (score > bestScore) {
          bestScore = score;
          enter = j;
        }
      }
    } else if (rule_ == PivotRule::Dantzig) {
      double best = -opt_.tol;
      for (int j = 0; j < numCols_; ++j) {
        if (!colExists_[static_cast<std::size_t>(j)]) continue;
        if (!allowArtificialEntering && isArtificialColumn(j)) continue;
        const double rc = obj_[static_cast<std::size_t>(j)];
        if (rc < best) {
          best = rc;
          enter = j;
        }
      }
    } else {
      for (int j = 0; j < numCols_; ++j) {
        if (!colExists_[static_cast<std::size_t>(j)]) continue;
        if (!allowArtificialEntering && isArtificialColumn(j)) continue;
        if (obj_[static_cast<std::size_t>(j)] < -opt_.tol) {
          enter = j;
          break;
        }
      }
    }
    if (enter < 0) return SolveStatus::Optimal;

    // Ratio test, two passes.  A single pass that accepts any ratio
    // within +/-tol of the running best lets the accepted ratio creep
    // one tolerance upward per acceptance; pivoting on a row whose
    // ratio exceeds the true minimum drives the minimum row's rhs
    // negative by a_ij times the excess, which on million-scale IPET
    // tableaus compounds into real infeasibility (a bounding cut
    // silently ignored).  Pass 1 finds the exact minimum ratio; pass 2
    // picks the smallest basic index (Bland anti-cycling tie-break)
    // among rows within one tolerance of it.
    double bestRatio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m_; ++i) {
      const double aij = rowCoeff(rows_[static_cast<std::size_t>(i)], enter);
      if (aij <= opt_.pivotTol) continue;
      const double ratio = rhs_[static_cast<std::size_t>(i)] / aij;
      if (ratio < bestRatio) bestRatio = ratio;
    }
    if (bestRatio == std::numeric_limits<double>::infinity()) {
      return SolveStatus::Unbounded;
    }
    int leave = -1;
    for (int i = 0; i < m_; ++i) {
      const double aij = rowCoeff(rows_[static_cast<std::size_t>(i)], enter);
      if (aij <= opt_.pivotTol) continue;
      const double ratio = rhs_[static_cast<std::size_t>(i)] / aij;
      if (ratio <= bestRatio + opt_.tol &&
          (leave < 0 || basis_[static_cast<std::size_t>(i)] <
                            basis_[static_cast<std::size_t>(leave)])) {
        leave = i;
      }
    }
    if (pivotsSinceProgress >= stallLimit && rule_ != PivotRule::Bland) {
      // Stalled.  Do NOT continue from this basis — epsilon-step pivots
      // through near-singular elements have been eroding it numerically
      // the whole time — report IterationLimit so the solver rebuilds a
      // fresh tableau under the next rule of its retry ladder.
      return SolveStatus::IterationLimit;
    }
    const double gammaQ =
        rule_ == PivotRule::Devex
            ? devexWeights_[static_cast<std::size_t>(enter)]
            : 0.0;
    pivot(leave, enter);
    ++pivots_;
    if (rule_ != PivotRule::Bland) {
      const double objectiveNow = objectiveValue();
      if (objectiveNow > lastObjective + opt_.tol) {
        lastObjective = objectiveNow;
        pivotsSinceProgress = 0;
      } else {
        ++pivotsSinceProgress;
      }
    }
    if (rule_ == PivotRule::Devex) {
      ++devexPivots_;
      // Reference-framework update from the pivot row.  pivot() scaled
      // the row so the entry at `enter` is exactly 1, making every
      // other entry the ratio alpha_rj / alpha_rq the update needs:
      //   gamma_j = max(gamma_j, ratio^2 * gamma_q)
      // (the old basic column appears in the row with value
      // 1/alpha_rq, so the classic leaving-variable update
      // gamma_p = max(1, gamma_q / alpha_rq^2) falls out of the same
      // loop).  Weights that outgrow the threshold restart the
      // framework — the approximation has drifted too far to steer.
      constexpr double kDevexReset = 1e9;
      double maxWeight = 1.0;
      for (const Entry& e :
           rows_[static_cast<std::size_t>(leave)]) {
        if (e.col == enter) continue;
        const double candidate = e.val * e.val * gammaQ;
        double& w = devexWeights_[static_cast<std::size_t>(e.col)];
        if (candidate > w) w = candidate;
        if (w > maxWeight) maxWeight = w;
      }
      if (maxWeight > kDevexReset) {
        devexWeights_.assign(static_cast<std::size_t>(numCols_), 1.0);
      }
    }
  }
}

SolveStatus Tableau::dualSimplex() {
  while (true) {
    if (pivots_ >= pivotBudget_) return SolveStatus::IterationLimit;
    // Leaving row: most negative rhs under Devex/Dantzig (ties:
    // smallest row); smallest-index violated row under Bland.  (Devex
    // pricing is a primal entering-column rule; the dual repair keeps
    // the most-violated-row heuristic.)
    int leave = -1;
    if (rule_ != PivotRule::Bland) {
      double mostNegative = -opt_.tol;
      for (int i = 0; i < m_; ++i) {
        if (rhs_[static_cast<std::size_t>(i)] < mostNegative) {
          mostNegative = rhs_[static_cast<std::size_t>(i)];
          leave = i;
        }
      }
    } else {
      for (int i = 0; i < m_; ++i) {
        if (rhs_[static_cast<std::size_t>(i)] < -opt_.tol) {
          leave = i;
          break;
        }
      }
    }
    if (leave < 0) return SolveStatus::Optimal;

    // Entering column: minimum dual ratio |rc_j / a_rj| over columns
    // with a negative coefficient in the leaving row (ties: smallest
    // column id).  No candidate means the row is unsatisfiable: the
    // problem is primal infeasible (dual unbounded).
    int enter = -1;
    double bestRatio = std::numeric_limits<double>::infinity();
    for (const Entry& e : rows_[static_cast<std::size_t>(leave)]) {
      if (e.val >= -opt_.pivotTol) continue;
      if (isArtificialColumn(e.col)) continue;
      const double ratio = obj_[static_cast<std::size_t>(e.col)] / (-e.val);
      if (ratio < bestRatio - opt_.tol ||
          (ratio < bestRatio + opt_.tol && (enter < 0 || e.col < enter))) {
        bestRatio = ratio;
        enter = e.col;
      }
    }
    if (enter < 0) return SolveStatus::Infeasible;
    pivot(leave, enter);
    ++pivots_;
    ++dualPivots_;
  }
}

bool Tableau::evictArtificials() {
  bool allEvicted = true;
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (!isArtificialColumn(b)) continue;
    // Entries are sorted, so this picks the smallest-index real column.
    int enter = -1;
    for (const Entry& e : rows_[static_cast<std::size_t>(i)]) {
      if (isArtificialColumn(e.col)) continue;
      if (std::abs(e.val) > opt_.pivotTol) {
        enter = e.col;
        break;
      }
    }
    if (enter >= 0) {
      pivot(i, enter);
      ++pivots_;
    } else {
      allEvicted = false;
    }
  }
  return allEvicted;
}

Solution Tableau::run(const std::vector<double>& objective, double constant) {
  Solution solution;

  bool anyArtificial = false;
  for (int i = 0; i < m_ && !anyArtificial; ++i) {
    anyArtificial = colExists_[static_cast<std::size_t>(
        artificialColumn(numOriginal_, i))] != 0;
  }
  if (anyArtificial) {
    // Phase 1: maximize -(sum of artificials).
    setObjectiveRow([&](int col) {
      return isArtificialColumn(col) ? -1.0 : 0.0;
    });
    const SolveStatus st = optimize(/*allowArtificialEntering=*/true);
    if (st == SolveStatus::IterationLimit) {
      solution.status = st;
      solution.pivots = pivots_;
      solution.installPivots = installPivots_;
      return solution;
    }
    CIN_REQUIRE(st != SolveStatus::Unbounded);  // phase-1 obj is <= 0
    if (objectiveValue() < -opt_.tol) {
      solution.status = SolveStatus::Infeasible;
      solution.pivots = pivots_;
      solution.installPivots = installPivots_;
      return solution;
    }
    if (!evictArtificials()) {
      // Rows whose artificial could not be pivoted out are redundant
      // (all real coefficients zero); they can be ignored because their
      // rhs is zero at this point.
    }
  }

  // Phase 2: the real objective.
  setObjectiveRow([&](int col) {
    return (col < numOriginal_) ? objective[static_cast<std::size_t>(col)]
                                : 0.0;
  });
  const SolveStatus st = optimize(/*allowArtificialEntering=*/false);
  solution.status = st;
  solution.pivots = pivots_;
  solution.installPivots = installPivots_;
  if (st != SolveStatus::Optimal) return solution;
  if (!primalFeasibleAtTol()) {
    // The "optimum" sits outside the feasible region: pivot drift ate a
    // constraint.  Report IterationLimit so the solver re-solves on a
    // fresh tableau under Bland's rule instead of returning an unsound
    // point.
    solution.status = SolveStatus::IterationLimit;
    return solution;
  }

  fillSolutionValues(&solution);
  solution.objective = objectiveValue() + constant;
  return solution;
}

bool Tableau::primalFeasibleAtTol() const {
  double scale = 1.0;
  for (int i = 0; i < m_; ++i) {
    scale = std::max(scale, std::abs(rhs_[static_cast<std::size_t>(i)]));
  }
  const double limit = -1e-6 * scale;
  for (int i = 0; i < m_; ++i) {
    if (rhs_[static_cast<std::size_t>(i)] < limit) return false;
  }
  return true;
}

bool Tableau::installBasis(const Basis& from) {
  if (from.numVars != numOriginal_) return false;
  if (static_cast<int>(from.basicCol.size()) > m_) return false;

  // Target basic column per row: the snapshot where it reaches, the
  // natural slack/surplus for appended rows (an appended Equal row keeps
  // its artificial — runWarm's final level check guards soundness).
  std::vector<int> target(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    if (i < static_cast<int>(from.basicCol.size())) {
      target[static_cast<std::size_t>(i)] =
          from.basicCol[static_cast<std::size_t>(i)];
    } else {
      const int slack = slackColumn(numOriginal_, i);
      target[static_cast<std::size_t>(i)] =
          colExists_[static_cast<std::size_t>(slack)]
              ? slack
              : basis_[static_cast<std::size_t>(i)];
    }
  }

  std::vector<unsigned char> taken(static_cast<std::size_t>(numCols_), 0);
  for (const int col : target) {
    if (col < 0 || col >= numCols_) return false;
    if (!colExists_[static_cast<std::size_t>(col)]) return false;
    if (taken[static_cast<std::size_t>(col)]) return false;
    taken[static_cast<std::size_t>(col)] = 1;
  }

  // Gauss-Jordan refactorization to the target basis.  A pass pivots
  // every row whose target column currently has a usable coefficient;
  // pivoting can enable rows an earlier pass could not reach, so iterate
  // to a fixpoint.  No progress with rows outstanding means the target
  // basis is singular at the pivot tolerance: report failure so the
  // caller re-solves cold.
  int remaining = 0;
  for (int i = 0; i < m_; ++i) {
    if (basis_[static_cast<std::size_t>(i)] !=
        target[static_cast<std::size_t>(i)]) {
      ++remaining;
    }
  }
  while (remaining > 0) {
    bool progress = false;
    for (int i = 0; i < m_; ++i) {
      const int want = target[static_cast<std::size_t>(i)];
      if (basis_[static_cast<std::size_t>(i)] == want) continue;
      const double p = rowCoeff(rows_[static_cast<std::size_t>(i)], want);
      if (std::abs(p) <= opt_.pivotTol) continue;
      pivot(i, want);
      // Refactorization eliminations, not simplex iterations: counted
      // apart so pivot totals compare warm vs cold like for like.
      ++installPivots_;
      --remaining;
      progress = true;
    }
    if (!progress) {
      // Deadlock: every remaining row has a zero on its own target
      // column.  The basis is a *set* of columns — the row assignment is
      // free — so permute instead: pivot a remaining row on another
      // remaining row's target it can reach and swap the two
      // assignments.  (A pending column basic in a different row is a
      // unit vector there and zero here, so the tolerance test skips it
      // naturally.)  No cross pivot anywhere means the target basis
      // really is singular at the pivot tolerance.
      for (int i = 0; i < m_ && !progress; ++i) {
        if (basis_[static_cast<std::size_t>(i)] ==
            target[static_cast<std::size_t>(i)]) {
          continue;
        }
        for (int j = 0; j < m_ && !progress; ++j) {
          if (j == i || basis_[static_cast<std::size_t>(j)] ==
                            target[static_cast<std::size_t>(j)]) {
            continue;
          }
          const double p = rowCoeff(rows_[static_cast<std::size_t>(i)],
                                    target[static_cast<std::size_t>(j)]);
          if (std::abs(p) <= opt_.pivotTol) continue;
          std::swap(target[static_cast<std::size_t>(i)],
                    target[static_cast<std::size_t>(j)]);
          pivot(i, target[static_cast<std::size_t>(i)]);
          ++installPivots_;
          --remaining;
          progress = true;
        }
      }
      if (!progress) return false;
    }
  }
  return true;
}

std::optional<Solution> Tableau::runWarm(const std::vector<double>& objective,
                                         double constant, const Basis& from) {
  if (!installBasis(from)) return std::nullopt;

  setObjectiveRow([&](int col) {
    return (col < numOriginal_) ? objective[static_cast<std::size_t>(col)]
                                : 0.0;
  });
  bool realObjectivePriced = true;

  // Packages a result that is genuine (something the cold path would
  // also report), as opposed to a warm-path dead end (std::nullopt).
  auto genuine = [&](SolveStatus st) {
    Solution solution;
    solution.status = st;
    solution.pivots = pivots_;
    solution.installPivots = installPivots_;
    solution.dualPivots = dualPivots_;
    solution.warmUsed = true;
    return solution;
  };

  bool primalInfeasible = false;
  for (int i = 0; i < m_ && !primalInfeasible; ++i) {
    primalInfeasible = rhs_[static_cast<std::size_t>(i)] < -opt_.tol;
  }
  if (primalInfeasible) {
    // Dual simplex needs dual feasibility (no negative reduced cost on
    // an admissible column).  The installed basis usually provides it
    // for the real objective — the branch-and-bound parent was optimal
    // and only the new cut row is violated; when it does not, the zero
    // objective is trivially dual feasible and restores rhs >= 0 all the
    // same, at the cost of repricing afterwards.
    for (int j = 0; j < numCols_ && realObjectivePriced; ++j) {
      if (!colExists_[static_cast<std::size_t>(j)]) continue;
      if (isArtificialColumn(j)) continue;
      if (obj_[static_cast<std::size_t>(j)] < -opt_.tol) {
        realObjectivePriced = false;
      }
    }
    if (!realObjectivePriced) setObjectiveRow([](int) { return 0.0; });
    const SolveStatus st = dualSimplex();
    // A budget blowout on the warm path must not surface outcomes the
    // cold path would not produce: fall back instead of reporting it.
    if (st == SolveStatus::IterationLimit) return std::nullopt;
    if (st == SolveStatus::Infeasible) {
      // Genuine result: the dual-unbounded row is an infeasibility
      // certificate for the original system (artificials are pinned to
      // zero in any admissible solution).
      return genuine(st);
    }
  }

  // Appended Equal rows keep their artificial basic, at whatever level
  // the installed point leaves the equality violated by.  Repair exactly
  // as cold phase 1 would — minimize the artificial levels — but from
  // the warm (primal feasible) basis instead of from scratch.
  bool artificialAtLevel = false;
  for (int i = 0; i < m_ && !artificialAtLevel; ++i) {
    artificialAtLevel =
        isArtificialColumn(basis_[static_cast<std::size_t>(i)]) &&
        rhs_[static_cast<std::size_t>(i)] > opt_.tol;
  }
  if (artificialAtLevel) {
    setObjectiveRow([&](int col) {
      return isArtificialColumn(col) ? -1.0 : 0.0;
    });
    realObjectivePriced = false;
    const SolveStatus st = optimize(/*allowArtificialEntering=*/true);
    if (st == SolveStatus::IterationLimit) return std::nullopt;
    CIN_REQUIRE(st != SolveStatus::Unbounded);  // phase-1 obj is <= 0
    if (objectiveValue() < -opt_.tol) {
      // Genuine: cold phase 1 reaches the same verdict.
      return genuine(SolveStatus::Infeasible);
    }
  }

  // A warm basis may leave artificials basic at level zero in
  // non-redundant rows (e.g. a postsolved basis hosting a removed Equal
  // row).  Phase 2's unboundedness certificate is only valid when every
  // artificial-basic row is redundant in the real columns, so pivot
  // them out exactly as the cold path does after phase 1; whatever
  // cannot be evicted is a genuinely redundant zero row.
  evictArtificials();

  if (!realObjectivePriced) {
    setObjectiveRow([&](int col) {
      return (col < numOriginal_) ? objective[static_cast<std::size_t>(col)]
                                  : 0.0;
    });
  }

  const SolveStatus st = optimize(/*allowArtificialEntering=*/false);
  if (st == SolveStatus::IterationLimit) return std::nullopt;
  Solution solution;
  solution.status = st;
  solution.pivots = pivots_;
  solution.installPivots = installPivots_;
  solution.dualPivots = dualPivots_;
  solution.warmUsed = true;
  if (st != SolveStatus::Optimal) return solution;
  // Same audit as the cold path: a warm "optimum" outside the feasible
  // region falls back to a cold re-solve.
  if (!primalFeasibleAtTol()) return std::nullopt;

  // An artificial still basic at a nonzero level means the point
  // violates that row's original constraint: the warm result would be
  // unsound, so reject it and let the caller re-solve cold (phase 1
  // decides feasibility properly).
  for (int i = 0; i < m_; ++i) {
    if (isArtificialColumn(basis_[static_cast<std::size_t>(i)]) &&
        std::abs(rhs_[static_cast<std::size_t>(i)]) > opt_.tol) {
      return std::nullopt;
    }
  }

  fillSolutionValues(&solution);
  solution.objective = objectiveValue() + constant;
  return solution;
}

void Tableau::fillSolutionValues(Solution* solution) const {
  solution->values.assign(static_cast<std::size_t>(numOriginal_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (b < numOriginal_) {
      solution->values[static_cast<std::size_t>(b)] =
          rhs_[static_cast<std::size_t>(i)];
    }
  }
  // Clamp tiny negatives introduced by rounding.
  for (double& v : solution->values) {
    if (v < 0 && v > -opt_.tol) v = 0;
  }
}

}  // namespace cinderella::lp
