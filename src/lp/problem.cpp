#include "cinderella/lp/problem.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cinderella/support/error.hpp"

namespace cinderella::lp {

void LinearExpr::add(int var, double coeff) {
  CIN_REQUIRE(var >= 0);
  for (auto& t : terms_) {
    if (t.var == var) {
      t.coeff += coeff;
      return;
    }
  }
  terms_.push_back({var, coeff});
}

void LinearExpr::canonicalize() {
  std::erase_if(terms_, [](const Term& t) { return t.coeff == 0.0; });
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
}

double LinearExpr::evaluate(const std::vector<double>& point) const {
  double value = constant_;
  for (const auto& t : terms_) {
    CIN_REQUIRE(static_cast<std::size_t>(t.var) < point.size());
    value += t.coeff * point[static_cast<std::size_t>(t.var)];
  }
  return value;
}

int LinearExpr::maxVar() const {
  int best = -1;
  for (const auto& t : terms_) best = std::max(best, t.var);
  return best;
}

const char* relationStr(Relation rel) {
  switch (rel) {
    case Relation::LessEq:
      return "<=";
    case Relation::GreaterEq:
      return ">=";
    case Relation::Equal:
      return "=";
  }
  return "?";
}

bool Constraint::satisfiedBy(const std::vector<double>& point,
                             double tol) const {
  const double lhs = expr.evaluate(point);
  switch (rel) {
    case Relation::LessEq:
      return lhs <= rhs + tol;
    case Relation::GreaterEq:
      return lhs >= rhs - tol;
    case Relation::Equal:
      return std::abs(lhs - rhs) <= tol;
  }
  return false;
}

int Problem::addVar(std::string name) {
  if (name.empty()) name = "v" + std::to_string(names_.size());
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size()) - 1;
}

void Problem::ensureVars(int count) {
  while (numVars() < count) addVar();
}

void Problem::setObjective(LinearExpr expr, Sense sense) {
  expr.canonicalize();
  CIN_REQUIRE(expr.maxVar() < numVars());
  objective_ = std::move(expr);
  sense_ = sense;
}

void Problem::addConstraint(Constraint c) {
  c.expr.canonicalize();
  CIN_REQUIRE(c.expr.maxVar() < numVars());
  // Fold the expression constant into the right-hand side.
  c.rhs -= c.expr.constant();
  LinearExpr folded;
  for (const auto& t : c.expr.terms()) folded.add(t.var, t.coeff);
  c.expr = std::move(folded);
  constraints_.push_back(std::move(c));
}

void Problem::addConstraint(LinearExpr expr, Relation rel, double rhs) {
  addConstraint(Constraint{std::move(expr), rel, rhs});
}

void Problem::truncateConstraints(std::size_t count) {
  if (count < constraints_.size()) {
    constraints_.resize(count);
  }
}

bool Problem::isFeasiblePoint(const std::vector<double>& point,
                              double tol) const {
  if (point.size() != static_cast<std::size_t>(numVars())) return false;
  for (double v : point) {
    if (v < -tol) return false;
  }
  return std::all_of(
      constraints_.begin(), constraints_.end(),
      [&](const Constraint& c) { return c.satisfiedBy(point, tol); });
}

namespace {
void appendExpr(std::ostringstream& out, const LinearExpr& expr,
                const Problem& p) {
  bool first = true;
  for (const auto& t : expr.terms()) {
    if (!first) out << (t.coeff >= 0 ? " + " : " - ");
    const double mag = first ? t.coeff : std::abs(t.coeff);
    if (mag != 1.0) out << mag << "*";
    out << p.varName(t.var);
    first = false;
  }
  if (first) out << "0";
}
}  // namespace

std::string Problem::str() const {
  std::ostringstream out;
  out << (sense_ == Sense::Maximize ? "maximize " : "minimize ");
  appendExpr(out, objective_, *this);
  out << "\nsubject to\n";
  for (const auto& c : constraints_) {
    out << "  ";
    appendExpr(out, c.expr, *this);
    out << " " << relationStr(c.rel) << " " << c.rhs << "\n";
  }
  out << "  all variables >= 0\n";
  return out.str();
}

}  // namespace cinderella::lp
