// Parametric formula pricing vs per-point solving: build the
// piecewise-affine WcetFormula once over a declared parameter box, then
// price every grid point by formula evaluation and compare against a
// direct (parameter-bound, warm-chained) solve at the same points.
//
// Two claims are checked and emitted as JSON:
//   - soundness: formula evaluation is bit-identical to the direct
//     solve at every sampled point (the benchmark exits nonzero on any
//     divergence — same contract the fuzz oracle and the CI
//     parametric-equivalence job enforce);
//   - performance: pricing the closed form is >= 10x faster than
//     re-solving per point, even with warm-started solves on the
//     direct side.  The committed snapshot (BENCH_parametric.json)
//     tracks this ratio; wall times are machine-dependent, piece
//     counts and bounds are deterministic.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/ipet/parametric.hpp"
#include "cinderella/obs/json.hpp"

namespace {

using namespace cinderella;

// One counted loop; the block starting on line 8 is the loop body.
constexpr const char* kLoop =
    "int acc;\n"                                  // 1
    "void f() {\n"                                // 2
    "  int i;\n"                                  // 3
    "  i = 0;\n"                                  // 4
    "  acc = 0;\n"                                // 5
    "  while (i < 64) {\n"                        // 6
    "    __loopbound(0, 64);\n"                   // 7
    "    acc = acc + i;\n"                        // 8
    "    i = i + 1;\n"                            // 9
    "  }\n"                                       // 10
    "}\n";                                        // 11

// Two loops with differently costly bodies (lines 9 and 14); the shared
// budget makes the worst-case bound genuinely piecewise in N.
constexpr const char* kTwoLoops =
    "int acc;\n"                                  // 1
    "void f() {\n"                                // 2
    "  int i;\n"                                  // 3
    "  int j;\n"                                  // 4
    "  i = 0;\n"                                  // 5
    "  j = 0;\n"                                  // 6
    "  while (i < 8) {\n"                         // 7
    "    __loopbound(0, 8);\n"                    // 8
    "    acc = acc + 1;\n"                        // 9
    "    i = i + 1;\n"                            // 10
    "  }\n"                                       // 11
    "  while (j < 8) {\n"                         // 12
    "    __loopbound(0, 8);\n"                    // 13
    "    acc = acc * acc + acc * acc + j;\n"      // 14
    "    j = j + 1;\n"                            // 15
    "  }\n"                                       // 16
    "}\n";                                        // 17

struct Program {
  const char* name;
  const char* source;
  const char* constraint;
  ipet::ParamDecl param;
};

const Program kPrograms[] = {
    {"counted_loop", kLoop, "@8 <= @N", {"N", 0, 64}},
    {"shared_budget", kTwoLoops, "@9 + @14 <= @N", {"N", 0, 16}},
};

ipet::Analyzer makeAnalyzer(const codegen::CompileResult& compiled,
                            const Program& program) {
  ipet::Analyzer analyzer(compiled, "f");
  analyzer.addConstraint(program.constraint);
  return analyzer;
}

std::int64_t nowMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

struct ProgramResult {
  int pieces = 0;
  int directSolves = 0;
  std::int64_t points = 0;
  std::int64_t buildMicros = 0;
  std::int64_t evalMicros = 0;
  std::int64_t directMicros = 0;
  bool identical = true;

  [[nodiscard]] double speedup() const {
    return evalMicros > 0
               ? static_cast<double>(directMicros) /
                     static_cast<double>(evalMicros)
               : static_cast<double>(directMicros);
  }
};

ProgramResult runProgram(const Program& program) {
  const codegen::CompileResult compiled =
      codegen::compileSource(program.source);
  ipet::Analyzer analyzer = makeAnalyzer(compiled, program);

  ProgramResult out;
  const auto buildStart = std::chrono::steady_clock::now();
  const ipet::ParametricResult parametric =
      ipet::solveParametric(analyzer, {program.param});
  out.buildMicros = nowMicros(buildStart);
  out.pieces = static_cast<int>(parametric.formula.pieces.size());
  out.directSolves = parametric.stats.directSolves;
  out.points = program.param.hi - program.param.lo + 1;

  // Pricing pass: formula evaluation at every grid point.
  std::vector<ipet::Interval> priced;
  priced.reserve(static_cast<std::size_t>(out.points));
  const auto evalStart = std::chrono::steady_clock::now();
  for (std::int64_t v = program.param.lo; v <= program.param.hi; ++v) {
    priced.push_back(parametric.formula.evaluate({v}));
  }
  out.evalMicros = nowMicros(evalStart);
  if (out.evalMicros < 1) out.evalMicros = 1;  // clock granularity floor

  // Direct pass: one warm-chained solve per point, same analyzer.
  ipet::SolveControl control;
  control.warmStart = true;
  const auto directStart = std::chrono::steady_clock::now();
  for (std::int64_t v = program.param.lo; v <= program.param.hi; ++v) {
    analyzer.clearParamBindings();
    analyzer.bindParam(program.param.name, v);
    const ipet::Interval direct = analyzer.estimate(control).bound;
    const ipet::Interval& formula =
        priced[static_cast<std::size_t>(v - program.param.lo)];
    if (direct.lo != formula.lo || direct.hi != formula.hi) {
      out.identical = false;
    }
  }
  out.directMicros = nowMicros(directStart);
  return out;
}

/// Prints the per-program table and one JSON document line; exits
/// nonzero if any point's formula value differs from the direct solve.
void printParametricTable() {
  std::printf(
      "PARAMETRIC PRICING (formula evaluation vs per-point warm solve)\n");
  std::printf("%-14s %7s %7s %7s %9s %9s %10s %9s\n", "Program", "points",
              "pieces", "solves", "buildUs", "evalUs", "directUs",
              "speedup");

  bool identical = true;
  obs::JsonWriter w;
  w.beginObject()
      .key("bench")
      .value("parametric")
      .key("programs")
      .beginArray();
  double minSpeedup = 0.0;
  bool first = true;
  for (const Program& program : kPrograms) {
    const ProgramResult r = runProgram(program);
    identical = identical && r.identical;
    if (first || r.speedup() < minSpeedup) minSpeedup = r.speedup();
    first = false;
    std::printf("%-14s %7lld %7d %7d %9lld %9lld %10lld %8.1fx%s\n",
                program.name, static_cast<long long>(r.points), r.pieces,
                r.directSolves, static_cast<long long>(r.buildMicros),
                static_cast<long long>(r.evalMicros),
                static_cast<long long>(r.directMicros), r.speedup(),
                r.identical ? "" : "  BOUNDS DIFFER");
    w.beginObject()
        .key("name")
        .value(program.name)
        .key("points")
        .value(r.points)
        .key("pieces")
        .value(r.pieces)
        .key("directSolves")
        .value(r.directSolves)
        .key("boundsIdentical")
        .value(r.identical)
        .key("buildMicros")
        .value(r.buildMicros)
        .key("evalMicros")
        .value(r.evalMicros)
        .key("directMicros")
        .value(r.directMicros)
        .key("speedup")
        .value(r.speedup())
        .endObject();
  }
  w.endArray().key("minSpeedup").value(minSpeedup).endObject();
  std::printf("%s\n", w.str().c_str());
  if (!identical) {
    std::fprintf(stderr,
                 "parametric formula diverged from direct solves — "
                 "engine bug\n");
    std::exit(1);
  }
}

void BM_FormulaEval(benchmark::State& state) {
  const Program& program = kPrograms[0];
  const codegen::CompileResult compiled =
      codegen::compileSource(program.source);
  ipet::Analyzer analyzer = makeAnalyzer(compiled, program);
  const ipet::ParametricResult parametric =
      ipet::solveParametric(analyzer, {program.param});
  std::int64_t v = program.param.lo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parametric.formula.evaluate({v}).hi);
    v = v == program.param.hi ? program.param.lo : v + 1;
  }
}

void BM_DirectSolve(benchmark::State& state) {
  const Program& program = kPrograms[0];
  const codegen::CompileResult compiled =
      codegen::compileSource(program.source);
  ipet::Analyzer analyzer = makeAnalyzer(compiled, program);
  ipet::SolveControl control;
  control.warmStart = true;
  std::int64_t v = program.param.lo;
  for (auto _ : state) {
    analyzer.clearParamBindings();
    analyzer.bindParam(program.param.name, v);
    benchmark::DoNotOptimize(analyzer.estimate(control).bound.hi);
    v = v == program.param.hi ? program.param.lo : v + 1;
  }
}

BENCHMARK(BM_FormulaEval);
BENCHMARK(BM_DirectSolve);

}  // namespace

int main(int argc, char** argv) {
  printParametricTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
