// Reproduces the paper's Section III-D / VI-A claims about ILP solver
// behaviour on IPET constraint systems:
//   - "in practice, the actual computation done by the ILP solver is
//     solving a single linear program": the root LP relaxation is
//     already integral, so branch-and-bound never branches;
//   - "the CPU times taken for each ILP problem were insignificant,
//     less than 2 seconds on an SGI Indigo".
//
// Prints the solver statistics per benchmark and registers a timing
// benchmark per ILP-heavy analysis.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "cinderella/obs/json.hpp"
#include "cinderella/obs/report.hpp"
#include "cinderella/suite/harness.hpp"
#include "cinderella/support/checked_math.hpp"

namespace {

using namespace cinderella;

void printStats() {
  std::vector<suite::BenchmarkEvaluation> evals;
  for (const auto& bench : suite::allBenchmarks()) {
    evals.push_back(suite::evaluate(bench));
  }

  std::printf("ILP SOLVER STATISTICS (paper Sections III-D, VI-A)\n");
  std::printf("%-18s %6s %8s %8s %8s %10s %12s\n", "Function", "Sets",
              "NonNull", "ILPs", "LPcalls", "Pivots", "RootIntegral");
  for (const auto& e : evals) {
    std::printf("%-18s %6d %8d %8d %8d %10d %12s\n", e.name.c_str(),
                e.stats.constraintSets,
                e.stats.constraintSets - e.stats.prunedNullSets,
                e.stats.ilpSolves, e.stats.lpCalls, e.stats.totalPivots,
                e.stats.allFirstRelaxationsIntegral ? "yes" : "NO");
  }
  std::printf("\nClaim check: LPcalls == ILPs on every row means each ILP\n"
              "was solved by its very first LP relaxation (no branching).\n\n");

  // Machine-readable mirror of the table: one JSON object per line, for
  // scripts tracking solver-statistics trajectories across commits.
  for (const auto& e : evals) {
    obs::JsonWriter w;
    w.beginObject().key("bench").value("ilp_stats").key("name").value(e.name);
    w.key("bound");
    obs::boundToJson(&w, e.estimated);
    w.key("stats");
    obs::statsToJson(&w, e.stats);
    w.endObject();
    std::printf("%s\n", w.str().c_str());
  }
  std::printf("\n");
}

// Cost of the fault-tolerant solve engine's exact objective
// recomputation: checked int64 accumulation (with the __int128
// promotion retry) versus the raw double accumulation it replaced.
// Emitted as a JSON line so the <5% overhead budget claimed in
// EXPERIMENTS.md is tracked alongside the solver statistics.
void printCheckedArithOverhead() {
  constexpr std::size_t kTerms = 1 << 14;
  constexpr int kReps = 200;
  std::vector<std::int64_t> coeff(kTerms), value(kTerms);
  std::uint64_t state = 0x1234'5678'9ABC'DEF0ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<std::int64_t>(state % 1000);
  };
  for (std::size_t i = 0; i < kTerms; ++i) {
    coeff[i] = next();
    value[i] = next();
  }

  using clock = std::chrono::steady_clock;
  const auto rawStart = clock::now();
  for (int r = 0; r < kReps; ++r) {
    double total = 0.0;
    for (std::size_t i = 0; i < kTerms; ++i) {
      total += static_cast<double>(coeff[i]) * static_cast<double>(value[i]);
    }
    benchmark::DoNotOptimize(total);
  }
  const double rawNs =
      std::chrono::duration<double, std::nano>(clock::now() - rawStart)
          .count() /
      (kReps * static_cast<double>(kTerms));

  const auto checkedStart = clock::now();
  for (int r = 0; r < kReps; ++r) {
    support::CheckedSum sum = support::accumulateProducts(
        kTerms, [&](std::size_t i) { return coeff[i]; },
        [&](std::size_t i) { return value[i]; });
    benchmark::DoNotOptimize(sum);
  }
  const double checkedNs =
      std::chrono::duration<double, std::nano>(clock::now() - checkedStart)
          .count() /
      (kReps * static_cast<double>(kTerms));

  // Promotion path: plant one overflowing term so every repetition pays
  // the full __int128 re-accumulation.
  coeff[0] = std::int64_t{1} << 62;
  value[0] = 4;
  const auto promotedStart = clock::now();
  for (int r = 0; r < kReps; ++r) {
    support::CheckedSum sum = support::accumulateProducts(
        kTerms, [&](std::size_t i) { return coeff[i]; },
        [&](std::size_t i) { return value[i]; });
    benchmark::DoNotOptimize(sum);
  }
  const double promotedNs =
      std::chrono::duration<double, std::nano>(clock::now() - promotedStart)
          .count() /
      (kReps * static_cast<double>(kTerms));

  obs::JsonWriter w;
  w.beginObject()
      .key("bench")
      .value("checked_arith")
      .key("terms")
      .value(static_cast<std::int64_t>(kTerms))
      .key("rawNsPerTerm")
      .value(rawNs)
      .key("checkedNsPerTerm")
      .value(checkedNs)
      .key("promotedNsPerTerm")
      .value(promotedNs)
      .key("overheadPct")
      .value(rawNs > 0.0 ? (checkedNs - rawNs) / rawNs * 100.0 : 0.0)
      .endObject();
  std::printf("%s\n\n", w.str().c_str());
}

void BM_IlpSolve(benchmark::State& state, const suite::Benchmark* bench) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  for (auto _ : state) {
    ipet::Analyzer analyzer(compiled, bench->rootFunction);
    for (const auto& c : bench->constraints) {
      analyzer.addConstraint(c.text, c.scope);
    }
    benchmark::DoNotOptimize(analyzer.estimate().stats.lpCalls);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printStats();
  printCheckedArithOverhead();
  for (const auto& bench : suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("ilp/" + bench.name).c_str(), BM_IlpSolve,
                                 &bench)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
