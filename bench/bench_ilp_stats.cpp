// Reproduces the paper's Section III-D / VI-A claims about ILP solver
// behaviour on IPET constraint systems:
//   - "in practice, the actual computation done by the ILP solver is
//     solving a single linear program": the root LP relaxation is
//     already integral, so branch-and-bound never branches;
//   - "the CPU times taken for each ILP problem were insignificant,
//     less than 2 seconds on an SGI Indigo".
//
// Prints the solver statistics per benchmark and registers a timing
// benchmark per ILP-heavy analysis.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "cinderella/obs/json.hpp"
#include "cinderella/obs/report.hpp"
#include "cinderella/suite/harness.hpp"

namespace {

using namespace cinderella;

void printStats() {
  std::vector<suite::BenchmarkEvaluation> evals;
  for (const auto& bench : suite::allBenchmarks()) {
    evals.push_back(suite::evaluate(bench));
  }

  std::printf("ILP SOLVER STATISTICS (paper Sections III-D, VI-A)\n");
  std::printf("%-18s %6s %8s %8s %8s %10s %12s\n", "Function", "Sets",
              "NonNull", "ILPs", "LPcalls", "Pivots", "RootIntegral");
  for (const auto& e : evals) {
    std::printf("%-18s %6d %8d %8d %8d %10d %12s\n", e.name.c_str(),
                e.stats.constraintSets,
                e.stats.constraintSets - e.stats.prunedNullSets,
                e.stats.ilpSolves, e.stats.lpCalls, e.stats.totalPivots,
                e.stats.allFirstRelaxationsIntegral ? "yes" : "NO");
  }
  std::printf("\nClaim check: LPcalls == ILPs on every row means each ILP\n"
              "was solved by its very first LP relaxation (no branching).\n\n");

  // Machine-readable mirror of the table: one JSON object per line, for
  // scripts tracking solver-statistics trajectories across commits.
  for (const auto& e : evals) {
    obs::JsonWriter w;
    w.beginObject().key("bench").value("ilp_stats").key("name").value(e.name);
    w.key("bound");
    obs::boundToJson(&w, e.estimated);
    w.key("stats");
    obs::statsToJson(&w, e.stats);
    w.endObject();
    std::printf("%s\n", w.str().c_str());
  }
  std::printf("\n");
}

void BM_IlpSolve(benchmark::State& state, const suite::Benchmark* bench) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  for (auto _ : state) {
    ipet::Analyzer analyzer(compiled, bench->rootFunction);
    for (const auto& c : bench->constraints) {
      analyzer.addConstraint(c.text, c.scope);
    }
    benchmark::DoNotOptimize(analyzer.estimate().stats.lpCalls);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printStats();
  for (const auto& bench : suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("ilp/" + bench.name).c_str(), BM_IlpSolve,
                                 &bench)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
