// Sustained-throughput and cache-effectiveness benchmark for the
// cinderella-serve daemon: an in-process serve::Server (loopback TCP,
// the real wire protocol) replays a corpus of generated fuzz programs
// plus every Table-I benchmark, twice.
//
// Three claims are checked and emitted as JSON lines (the committed
// snapshot is BENCH_serve.json):
//   - the second pass answers from the content-addressed solve cache
//     (hit rate >= 50% over both passes, i.e. ~100% of pass 2) with
//     bounds bit-identical to the first pass — a cache hit never
//     changes an answer;
//   - served request throughput and client-observed p50/p90/p99
//     latency, per pass, so cold-solve and cache-served rates can be
//     compared release over release;
//   - full telemetry (structured log + slow-request tracing + flight
//     recorder) costs little: the same replay against an instrumented
//     daemon, with the throughput ratio reported as telemetryOverhead.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cinderella/fuzz/generator.hpp"
#include "cinderella/obs/json.hpp"
#include "cinderella/obs/log.hpp"
#include "cinderella/obs/metrics.hpp"
#include "cinderella/serve/client.hpp"
#include "cinderella/serve/server.hpp"
#include "cinderella/suite/suite.hpp"

namespace {

using namespace cinderella;

constexpr int kGeneratedPrograms = 24;
constexpr std::uint64_t kCorpusSeed = 20260807;

struct CorpusEntry {
  std::string label;
  ipet::AnalysisRequest request;
};

std::vector<CorpusEntry> buildCorpus() {
  std::vector<CorpusEntry> corpus;
  fuzz::GeneratorOptions generatorOptions;
  generatorOptions.emitConstraints = true;
  fuzz::ProgramGenerator generator(generatorOptions);
  for (int i = 0; i < kGeneratedPrograms; ++i) {
    const fuzz::GeneratedProgram program = generator.generate(
        fuzz::deriveSeed(kCorpusSeed, static_cast<std::uint64_t>(i)));
    CorpusEntry entry;
    entry.label = "fuzz-" + std::to_string(i);
    entry.request.label = entry.label;
    entry.request.source = program.source;
    entry.request.root = program.root;
    for (const std::string& c : program.constraints) {
      entry.request.constraints.push_back({c, ""});
    }
    corpus.push_back(std::move(entry));
  }
  for (const suite::Benchmark& bench : suite::allBenchmarks()) {
    CorpusEntry entry;
    entry.label = bench.name;
    entry.request.label = bench.name;
    entry.request.benchmark = bench.name;
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

struct PassStats {
  int requests = 0;
  int hits = 0;
  std::int64_t wallMicros = 0;
  std::vector<std::int64_t> latencyMicros;  ///< Client-observed, per call.

  [[nodiscard]] double reqPerSec() const {
    return wallMicros > 0
               ? 1e6 * static_cast<double>(requests) /
                     static_cast<double>(wallMicros)
               : 0.0;
  }
};

void passToJson(obs::JsonWriter* w, const PassStats& p) {
  w->beginObject()
      .key("requests")
      .value(p.requests)
      .key("cacheHits")
      .value(p.hits)
      .key("wallMicros")
      .value(p.wallMicros)
      .key("reqPerSec")
      .value(p.reqPerSec())
      .key("p50Micros")
      .value(obs::percentileOf(p.latencyMicros, 0.50))
      .key("p90Micros")
      .value(obs::percentileOf(p.latencyMicros, 0.90))
      .key("p99Micros")
      .value(obs::percentileOf(p.latencyMicros, 0.99))
      .endObject();
}

/// Replays the corpus twice against `server`, checking the serving
/// contract (every response ok, repeat bounds bit-identical).
std::vector<PassStats> replayTwice(serve::Server& server,
                                   const std::vector<CorpusEntry>& corpus,
                                   bool* boundsIdentical) {
  std::string error;
  serve::Client client;
  if (!client.connect(server.port(), &error)) {
    std::fprintf(stderr, "bench_serve: connect failed: %s\n", error.c_str());
    std::exit(1);
  }
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> firstBounds;
  std::vector<PassStats> passes;
  for (int pass = 0; pass < 2; ++pass) {
    PassStats stats;
    const auto start = std::chrono::steady_clock::now();
    for (const CorpusEntry& entry : corpus) {
      const auto callStart = std::chrono::steady_clock::now();
      const auto response = client.analyze(entry.request, &error);
      stats.latencyMicros.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - callStart)
              .count());
      if (!response || !response->ok) {
        std::fprintf(stderr, "bench_serve: %s: %s\n", entry.label.c_str(),
                     response ? response->error.c_str() : error.c_str());
        std::exit(1);
      }
      ++stats.requests;
      if (response->cacheHit) ++stats.hits;
      const std::pair<std::int64_t, std::int64_t> bound{response->boundLo,
                                                        response->boundHi};
      const auto [it, inserted] = firstBounds.emplace(entry.label, bound);
      if (!inserted && it->second != bound) {
        *boundsIdentical = false;
        std::fprintf(stderr, "bench_serve: %s: bound changed across passes\n",
                     entry.label.c_str());
      }
    }
    stats.wallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    passes.push_back(std::move(stats));
  }
  (void)client.shutdown(&error);
  return passes;
}

/// Replays the corpus twice against a fresh daemon and verifies the
/// serving contract; exits nonzero on any violation so the committed
/// snapshot is self-gating.  A second, fully instrumented daemon (log +
/// slow tracing + flight recorder) replays the same corpus to price the
/// telemetry.
void runReplayGate() {
  const std::vector<CorpusEntry> corpus = buildCorpus();
  bool boundsIdentical = true;

  serve::ServerOptions plainOptions;
  plainOptions.poolThreads = 2;
  plainOptions.benchmarkResolver = suite::benchmarkResolver();
  serve::Server plain(std::move(plainOptions));
  std::string error;
  if (!plain.start(&error)) {
    std::fprintf(stderr, "bench_serve: start failed: %s\n", error.c_str());
    std::exit(1);
  }
  const std::vector<PassStats> passes =
      replayTwice(plain, corpus, &boundsIdentical);
  plain.stop();

  // The same workload against a daemon with every telemetry feature on:
  // NDJSON log for each request, slow-request tracing armed at 1 ms (so
  // most solves carry a live span tree), flight recorder.  The log goes
  // to a string sink — the cost measured is instrumentation, not disk.
  std::ostringstream logSink;
  obs::Logger logger(&logSink, obs::LogLevel::Info);
  serve::ServerOptions obsOptions;
  obsOptions.poolThreads = 2;
  obsOptions.benchmarkResolver = suite::benchmarkResolver();
  obsOptions.logger = &logger;
  obsOptions.slowMillis = 1;
  serve::Server instrumented(std::move(obsOptions));
  if (!instrumented.start(&error)) {
    std::fprintf(stderr, "bench_serve: start failed: %s\n", error.c_str());
    std::exit(1);
  }
  const std::vector<PassStats> observedPasses =
      replayTwice(instrumented, corpus, &boundsIdentical);
  instrumented.stop();

  std::printf("SERVE REPLAY (%zu inputs x 2 passes, loopback NDJSON)\n",
              corpus.size());
  std::printf("%14s %9s %9s %10s %10s %8s %8s\n", "Pass", "Requests", "Hits",
              "wallMs", "req/s", "p50us", "p99us");
  const auto printPass = [](const char* name, int i, const PassStats& p) {
    std::printf("%12s-%d %9d %9d %10.1f %10.1f %8lld %8lld\n", name, i + 1,
                p.requests, p.hits, static_cast<double>(p.wallMicros) / 1e3,
                p.reqPerSec(),
                static_cast<long long>(obs::percentileOf(p.latencyMicros,
                                                         0.50)),
                static_cast<long long>(obs::percentileOf(p.latencyMicros,
                                                         0.99)));
  };
  for (std::size_t i = 0; i < passes.size(); ++i) {
    printPass("plain", static_cast<int>(i), passes[i]);
  }
  for (std::size_t i = 0; i < observedPasses.size(); ++i) {
    printPass("telemetry", static_cast<int>(i), observedPasses[i]);
  }

  int totalRequests = 0;
  int totalHits = 0;
  for (const PassStats& p : passes) {
    totalRequests += p.requests;
    totalHits += p.hits;
  }
  const double hitRate =
      totalRequests > 0
          ? static_cast<double>(totalHits) / static_cast<double>(totalRequests)
          : 0.0;
  const double speedup =
      passes[1].wallMicros > 0
          ? static_cast<double>(passes[0].wallMicros) /
                static_cast<double>(passes[1].wallMicros)
          : 0.0;
  // Overhead priced on the cold pass: its solve-dominated wall time is
  // the serving regime the <2% target speaks about (the cached pass is
  // microseconds per request, where any fixed cost looks huge).
  const double telemetryOverhead =
      passes[0].wallMicros > 0
          ? static_cast<double>(observedPasses[0].wallMicros) /
                    static_cast<double>(passes[0].wallMicros) -
                1.0
          : 0.0;
  std::printf("\nhit rate %d/%d (%.0f%%), cache-served pass %.2fx faster, "
              "bounds %s, telemetry overhead %+.1f%%\n\n",
              totalHits, totalRequests, hitRate * 100.0, speedup,
              boundsIdentical ? "bit-identical" : "DIVERGED",
              telemetryOverhead * 100.0);

  obs::JsonWriter w;
  w.beginObject()
      .key("bench")
      .value("serve")
      .key("corpus")
      .value(static_cast<std::int64_t>(corpus.size()))
      .key("passes")
      .value(2)
      .key("hitRate")
      .value(hitRate)
      .key("boundsIdentical")
      .value(boundsIdentical)
      .key("cacheSpeedup")
      .value(speedup)
      .key("telemetryOverhead")
      .value(telemetryOverhead)
      .key("cold");
  passToJson(&w, passes[0]);
  w.key("cached");
  passToJson(&w, passes[1]);
  w.key("coldTelemetry");
  passToJson(&w, observedPasses[0]);
  w.key("cachedTelemetry");
  passToJson(&w, observedPasses[1]);
  w.endObject();
  std::printf("%s\n", w.str().c_str());

  if (!boundsIdentical) {
    std::fprintf(stderr, "bench_serve: cache hits changed bounds — bug\n");
    std::exit(1);
  }
  if (hitRate < 0.5) {
    std::fprintf(stderr,
                 "bench_serve: hit rate %.2f below 0.5 — the second pass "
                 "should be served from cache\n",
                 hitRate);
    std::exit(1);
  }
}

/// Round-trip latency of a single cache-served request (protocol +
/// socket + lookup; no solving).
void BM_CachedRequest(benchmark::State& state) {
  serve::ServerOptions serverOptions;
  serverOptions.poolThreads = 1;
  serverOptions.benchmarkResolver = suite::benchmarkResolver();
  serve::Server server(std::move(serverOptions));
  std::string error;
  if (!server.start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  serve::Client client;
  if (!client.connect(server.port(), &error)) {
    state.SkipWithError(error.c_str());
    server.stop();
    return;
  }
  ipet::AnalysisRequest request;
  request.benchmark = "piksrt";
  (void)client.analyze(request, &error);  // populate the cache
  for (auto _ : state) {
    const auto response = client.analyze(request, &error);
    if (!response || !response->ok || !response->cacheHit) {
      state.SkipWithError("cached request failed");
      break;
    }
    benchmark::DoNotOptimize(response->boundHi);
  }
  (void)client.shutdown(&error);
  server.stop();
}
BENCHMARK(BM_CachedRequest);

}  // namespace

int main(int argc, char** argv) {
  runReplayGate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
