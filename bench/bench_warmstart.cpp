// Warm-start A/B for the incremental solve engine (SolveControl::
// warmStart): every Table-I benchmark analyzed twice, once with the
// full warm chain (structural seed -> probe -> ILP root -> shared
// min/max root -> branch-and-bound children) and once cold.
//
// Two claims are checked and emitted as JSON lines:
//   - the bounds are bit-identical either way (warm starting is purely
//     a performance feature, never an accuracy trade);
//   - on the multi-set benchmarks the warm engine does strictly less
//     simplex work — the committed snapshot (BENCH_warmstart.json)
//     tracks a >= 2x reduction in total simplex pivots.
//
// "Total simplex pivots" counts every simplex iteration an estimate()
// call performs: ILP relaxations (stats.totalPivots), the per-set
// feasibility probes, degradation-ladder fallback LPs, and the shared
// structural seed.  Basis-installation eliminations are refactorization
// work, not simplex iterations; they are reported separately
// (installPivots) and never mixed into the ratio.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/obs/json.hpp"
#include "cinderella/suite/suite.hpp"

namespace {

using namespace cinderella;

struct RunStats {
  ipet::Interval bound;
  ipet::SolveStats stats;
  int probePivots = 0;
  int fallbackPivots = 0;
  std::int64_t wallMicros = 0;

  /// Every simplex iteration the estimate performed (see file comment).
  [[nodiscard]] int simplexPivots() const {
    return stats.totalPivots + probePivots + fallbackPivots +
           stats.seedPivots;
  }
};

RunStats runOnce(const suite::Benchmark& bench, bool warm) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench.source);
  ipet::Analyzer analyzer(compiled, bench.rootFunction);
  for (const auto& c : bench.constraints) {
    analyzer.addConstraint(c.text, c.scope);
  }
  ipet::SolveControl control;
  control.warmStart = warm;
  // Presolve is pinned off so the A/B isolates the warm chain — with
  // the reduction engine in front, both sides solve near-trivial
  // tableaus and the comparison stops measuring warm starts.  The
  // default (presolve-on) configuration is benchmarked by
  // bench_presolve.
  control.presolve = false;
  const auto start = std::chrono::steady_clock::now();
  const ipet::Estimate estimate = analyzer.estimate(control);
  RunStats out;
  out.wallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  out.bound = estimate.bound;
  out.stats = estimate.stats;
  for (const ipet::SetSolveRecord& rec : estimate.setRecords) {
    out.probePivots += rec.probePivots;
    out.fallbackPivots += rec.fallbackPivots;
  }
  return out;
}

void sideToJson(obs::JsonWriter* w, const RunStats& r) {
  w->beginObject()
      .key("wallMicros")
      .value(r.wallMicros)
      .key("simplexPivots")
      .value(r.simplexPivots())
      .key("ilpPivots")
      .value(r.stats.totalPivots)
      .key("probePivots")
      .value(r.probePivots)
      .key("seedPivots")
      .value(r.stats.seedPivots)
      .key("installPivots")
      .value(r.stats.installPivots)
      .key("dualPivots")
      .value(r.stats.dualPivots)
      .key("lpCalls")
      .value(r.stats.lpCalls)
      .key("warmStarts")
      .value(r.stats.warmStarts)
      .key("coldStarts")
      .value(r.stats.coldStarts)
      .key("warmFailures")
      .value(r.stats.warmFailures)
      .key("dedupedSets")
      .value(r.stats.dedupedSets)
      .key("dominatedSets")
      .value(r.stats.dominatedSets)
      .endObject();
}

/// Prints the per-benchmark A/B table and JSON lines; exits nonzero if
/// any benchmark's bounds differ between the two modes.
void printWarmColdTable() {
  std::printf("WARM-START A/B (SolveControl::warmStart on vs off)\n");
  std::printf("%-18s %6s %12s %12s %7s %9s %9s\n", "Function", "Sets",
              "coldPivots", "warmPivots", "ratio", "coldUs", "warmUs");

  bool identical = true;
  int totalCold = 0;
  int totalWarm = 0;
  for (const auto& bench : suite::allBenchmarks()) {
    const RunStats warm = runOnce(bench, /*warm=*/true);
    const RunStats cold = runOnce(bench, /*warm=*/false);
    const bool same = warm.bound.lo == cold.bound.lo &&
                      warm.bound.hi == cold.bound.hi;
    identical = identical && same;
    totalCold += cold.simplexPivots();
    totalWarm += warm.simplexPivots();
    const double ratio =
        warm.simplexPivots() > 0
            ? static_cast<double>(cold.simplexPivots()) /
                  static_cast<double>(warm.simplexPivots())
            : 0.0;
    std::printf("%-18s %6d %12d %12d %6.2fx %9lld %9lld%s\n",
                bench.name.c_str(), warm.stats.constraintSets,
                cold.simplexPivots(), warm.simplexPivots(), ratio,
                static_cast<long long>(cold.wallMicros),
                static_cast<long long>(warm.wallMicros),
                same ? "" : "  BOUNDS DIFFER");

    obs::JsonWriter w;
    w.beginObject()
        .key("bench")
        .value("warmstart")
        .key("name")
        .value(bench.name)
        .key("constraintSets")
        .value(warm.stats.constraintSets)
        .key("boundsIdentical")
        .value(same)
        .key("bound");
    w.beginObject()
        .key("lo")
        .value(warm.bound.lo)
        .key("hi")
        .value(warm.bound.hi)
        .endObject();
    w.key("warm");
    sideToJson(&w, warm);
    w.key("cold");
    sideToJson(&w, cold);
    w.key("pivotReduction").value(ratio).endObject();
    std::printf("%s\n", w.str().c_str());
  }
  std::printf("\nsuite total: cold %d pivots, warm %d pivots (%.2fx)\n\n",
              totalCold, totalWarm,
              totalWarm > 0 ? static_cast<double>(totalCold) / totalWarm
                            : 0.0);
  if (!identical) {
    std::fprintf(stderr, "warm/cold bounds diverged — solver bug\n");
    std::exit(1);
  }
}

const suite::Benchmark* findBenchmark(const char* name) {
  for (const auto& bench : suite::allBenchmarks()) {
    if (bench.name == name) return &bench;
  }
  return nullptr;
}

void BM_EstimateWarm(benchmark::State& state, const char* name) {
  const suite::Benchmark* bench = findBenchmark(name);
  for (auto _ : state) {
    const RunStats r = runOnce(*bench, /*warm=*/true);
    benchmark::DoNotOptimize(r.bound.hi);
  }
  state.counters["pivots"] =
      static_cast<double>(runOnce(*bench, true).simplexPivots());
}

void BM_EstimateCold(benchmark::State& state, const char* name) {
  const suite::Benchmark* bench = findBenchmark(name);
  for (auto _ : state) {
    const RunStats r = runOnce(*bench, /*warm=*/false);
    benchmark::DoNotOptimize(r.bound.hi);
  }
  state.counters["pivots"] =
      static_cast<double>(runOnce(*bench, false).simplexPivots());
}

BENCHMARK_CAPTURE(BM_EstimateWarm, dhry, "dhry");
BENCHMARK_CAPTURE(BM_EstimateCold, dhry, "dhry");
BENCHMARK_CAPTURE(BM_EstimateWarm, check_data, "check_data");
BENCHMARK_CAPTURE(BM_EstimateCold, check_data, "check_data");

}  // namespace

int main(int argc, char** argv) {
  printWarmColdTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
