// Ablation for the paper's Section IV cache treatments.
//
// The paper ships the conservative all-miss model, proposes splitting a
// loop's first iteration ("This pessimism can easily be avoided in the
// path analysis stage by considering the first iteration of the loop as
// a separate basic block"), and announces cache modeling as current
// work — which became the authors' cache-conflict-graph ILP.  All three
// are implemented here; this bench compares the worst-case bound each
// produces against the measured worst case, checking soundness per row.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cinderella/suite/harness.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

void printTable() {
  std::printf("ABLATION: cache treatments (paper Section IV)\n");
  std::printf("%-18s %14s %14s %14s %12s %7s\n", "Function", "all-miss",
              "first-iter", "conflict-grph", "measured", "sound");
  for (const auto& bench : suite::allBenchmarks()) {
    suite::EvalOptions allMiss;
    suite::EvalOptions split;
    split.cacheMode = ipet::CacheMode::FirstIterationSplit;
    suite::EvalOptions ccg;
    ccg.cacheMode = ipet::CacheMode::ConflictGraph;
    const auto a = suite::evaluate(bench, allMiss);
    const auto s = suite::evaluate(bench, split);
    const auto g = suite::evaluate(bench, ccg);
    const bool sound = s.estimated.hi >= s.measured.hi &&
                       g.estimated.hi >= g.measured.hi &&
                       a.estimated.hi >= a.measured.hi;
    std::printf("%-18s %14s %14s %14s %12s %7s\n", bench.name.c_str(),
                withThousands(a.estimated.hi).c_str(),
                withThousands(s.estimated.hi).c_str(),
                withThousands(g.estimated.hi).c_str(),
                withThousands(a.measured.hi).c_str(), sound ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_CacheMode(benchmark::State& state, const suite::Benchmark* bench,
                  ipet::CacheMode mode) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  ipet::AnalyzerOptions options;
  options.cacheMode = mode;
  for (auto _ : state) {
    ipet::Analyzer analyzer(compiled, bench->rootFunction, options);
    for (const auto& c : bench->constraints) {
      analyzer.addConstraint(c.text, c.scope);
    }
    benchmark::DoNotOptimize(analyzer.estimate().bound.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* name : {"check_data", "piksrt", "line", "fft"}) {
    const auto& bench = suite::benchmarkByName(name);
    for (const ipet::CacheMode mode :
         {ipet::CacheMode::AllMiss, ipet::CacheMode::FirstIterationSplit,
          ipet::CacheMode::ConflictGraph}) {
      benchmark::RegisterBenchmark(
          (std::string(ipet::cacheModeStr(mode)) + "/" + name).c_str(),
          BM_CacheMode, &bench, mode)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
