// Fuzz-subsystem throughput: how many random programs per second each
// stage of the differential pipeline sustains.  The campaign rate
// bounds how much coverage a CI fuzz budget buys (EXPERIMENTS.md
// records the numbers), so a regression here directly shrinks the
// tested program space per CI minute.
//
// Stages, each measured over the same seed stream:
//   generate      — MiniC source synthesis only
//   compile       — + frontend and codegen
//   oracle-fast   — + IPET (all-miss) and simulation bracketing
//   oracle-full   — the complete oracle: three cache modes, explicit
//                   enumeration, constraint neutrality, jobs=2 replay
#include <chrono>
#include <cstdio>
#include <string>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/fuzz/generator.hpp"
#include "cinderella/fuzz/oracle.hpp"
#include "cinderella/obs/json.hpp"

namespace {

using namespace cinderella;

constexpr int kPrograms = 200;

fuzz::GeneratorOptions generatorOptions() {
  fuzz::GeneratorOptions options;
  options.emitConstraints = true;
  return options;
}

template <typename Body>
double timeStage(const char* name, const Body& body) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPrograms; ++i) body(static_cast<std::uint64_t>(i));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double rate = kPrograms / seconds;
  std::printf("%-14s %8.2f ms total %10.1f programs/sec\n", name,
              seconds * 1e3, rate);
  obs::JsonWriter w;
  w.beginObject();
  w.key("bench").value("bench_fuzz");
  w.key("stage").value(name);
  w.key("programs").value(kPrograms);
  w.key("programsPerSec").value(rate);
  w.endObject();
  std::printf("%s\n", w.str().c_str());
  return rate;
}

}  // namespace

int main() {
  std::printf("FUZZ PIPELINE THROUGHPUT (%d programs per stage)\n\n",
              kPrograms);

  fuzz::ProgramGenerator gen(generatorOptions());

  timeStage("generate", [&](std::uint64_t seed) {
    (void)gen.generate(fuzz::deriveSeed(1, seed));
  });

  timeStage("compile", [&](std::uint64_t seed) {
    const fuzz::GeneratedProgram program =
        gen.generate(fuzz::deriveSeed(1, seed));
    (void)codegen::compileSource(program.source);
  });

  fuzz::OracleOptions fast;
  fast.cacheModes = {ipet::CacheMode::AllMiss};
  fast.compareExplicit = false;
  fast.extraJobs = {};
  fast.simTrials = 3;
  const fuzz::DifferentialOracle fastOracle(fast);
  timeStage("oracle-fast", [&](std::uint64_t seed) {
    const fuzz::GeneratedProgram program =
        gen.generate(fuzz::deriveSeed(1, seed));
    const fuzz::OracleReport report = fastOracle.check(program, seed ^ 1);
    if (!report.ok()) {
      std::printf("UNEXPECTED FAILURE: %s\n", report.summary().c_str());
    }
  });

  const fuzz::DifferentialOracle fullOracle;
  timeStage("oracle-full", [&](std::uint64_t seed) {
    const fuzz::GeneratedProgram program =
        gen.generate(fuzz::deriveSeed(1, seed));
    const fuzz::OracleReport report = fullOracle.check(program, seed ^ 1);
    if (!report.ok()) {
      std::printf("UNEXPECTED FAILURE: %s\n", report.summary().c_str());
    }
  });

  std::printf(
      "\nThe oracle-full rate is what `cinderella-fuzz` sustains; the gap\n"
      "to oracle-fast is the price of explicit enumeration, the extra\n"
      "cache modes and the jobs=2 determinism replay.\n");
  return 0;
}
