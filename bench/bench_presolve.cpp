// Presolve A/B for the LP reduction engine (SolveControl::presolve):
// every Table-I benchmark analyzed twice, once with the fixpoint
// presolver (singleton substitution, bound propagation, fixed-variable
// elimination, redundant-row removal) in front of every simplex call
// and once on the raw IPET formulation.
//
// Two claims are checked and emitted as JSON lines:
//   - the bounds are bit-identical either way (presolve is purely a
//     performance feature — the postsolve stack maps every reduced
//     solution and basis back to the original space exactly);
//   - the reduced formulations take strictly fewer simplex pivots —
//     the committed snapshot (BENCH_presolve.json) pins the exact
//     per-benchmark pivot and reduction counts.
//
// "Total simplex pivots" uses the same accounting as bench_warmstart:
// ILP relaxations (stats.totalPivots), per-set feasibility probes,
// degradation-ladder fallback LPs, and the shared structural seed.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/obs/json.hpp"
#include "cinderella/suite/suite.hpp"

namespace {

using namespace cinderella;

struct RunStats {
  ipet::Interval bound;
  ipet::SolveStats stats;
  int probePivots = 0;
  int fallbackPivots = 0;
  std::int64_t wallMicros = 0;

  /// Every simplex iteration the estimate performed (see file comment).
  [[nodiscard]] int simplexPivots() const {
    return stats.totalPivots + probePivots + fallbackPivots +
           stats.seedPivots;
  }
};

RunStats runOnce(const suite::Benchmark& bench, bool presolve) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench.source);
  ipet::Analyzer analyzer(compiled, bench.rootFunction);
  for (const auto& c : bench.constraints) {
    analyzer.addConstraint(c.text, c.scope);
  }
  ipet::SolveControl control;
  control.presolve = presolve;
  const auto start = std::chrono::steady_clock::now();
  const ipet::Estimate estimate = analyzer.estimate(control);
  RunStats out;
  out.wallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  out.bound = estimate.bound;
  out.stats = estimate.stats;
  for (const ipet::SetSolveRecord& rec : estimate.setRecords) {
    out.probePivots += rec.probePivots;
    out.fallbackPivots += rec.fallbackPivots;
  }
  return out;
}

void sideToJson(obs::JsonWriter* w, const RunStats& r) {
  w->beginObject()
      .key("wallMicros")
      .value(r.wallMicros)
      .key("simplexPivots")
      .value(r.simplexPivots())
      .key("ilpPivots")
      .value(r.stats.totalPivots)
      .key("probePivots")
      .value(r.probePivots)
      .key("seedPivots")
      .value(r.stats.seedPivots)
      .key("devexPivots")
      .value(r.stats.devexPivots)
      .key("lpCalls")
      .value(r.stats.lpCalls)
      .key("rowsRemoved")
      .value(r.stats.presolveRowsRemoved)
      .key("colsFixed")
      .value(r.stats.presolveColsFixed)
      .key("substitutions")
      .value(r.stats.presolveSubstitutions)
      .key("rounds")
      .value(r.stats.presolveRounds)
      .endObject();
}

/// Prints the per-benchmark A/B table and JSON lines; exits nonzero if
/// any benchmark's bounds differ between the two modes.
void printPresolveTable() {
  std::printf("PRESOLVE A/B (SolveControl::presolve on vs off)\n");
  std::printf("%-18s %6s %10s %9s %7s %7s %7s %9s %9s\n", "Function",
              "Sets", "offPivots", "onPivots", "ratio", "rows-", "cols-",
              "offUs", "onUs");

  bool identical = true;
  int totalOff = 0;
  int totalOn = 0;
  for (const auto& bench : suite::allBenchmarks()) {
    const RunStats on = runOnce(bench, /*presolve=*/true);
    const RunStats off = runOnce(bench, /*presolve=*/false);
    const bool same =
        on.bound.lo == off.bound.lo && on.bound.hi == off.bound.hi;
    identical = identical && same;
    totalOff += off.simplexPivots();
    totalOn += on.simplexPivots();
    const double ratio =
        on.simplexPivots() > 0
            ? static_cast<double>(off.simplexPivots()) /
                  static_cast<double>(on.simplexPivots())
            : 0.0;
    std::printf(
        "%-18s %6d %10d %9d %6.2fx %7d %7d %9lld %9lld%s\n",
        bench.name.c_str(), on.stats.constraintSets, off.simplexPivots(),
        on.simplexPivots(), ratio, on.stats.presolveRowsRemoved,
        on.stats.presolveColsFixed + on.stats.presolveSubstitutions,
        static_cast<long long>(off.wallMicros),
        static_cast<long long>(on.wallMicros),
        same ? "" : "  BOUNDS DIFFER");

    obs::JsonWriter w;
    w.beginObject()
        .key("bench")
        .value("presolve")
        .key("name")
        .value(bench.name)
        .key("constraintSets")
        .value(on.stats.constraintSets)
        .key("boundsIdentical")
        .value(same)
        .key("bound");
    w.beginObject()
        .key("lo")
        .value(on.bound.lo)
        .key("hi")
        .value(on.bound.hi)
        .endObject();
    w.key("on");
    sideToJson(&w, on);
    w.key("off");
    sideToJson(&w, off);
    w.key("pivotReduction").value(ratio).endObject();
    std::printf("%s\n", w.str().c_str());
  }
  std::printf("\nsuite total: off %d pivots, on %d pivots (%.2fx)\n\n",
              totalOff, totalOn,
              totalOn > 0 ? static_cast<double>(totalOff) / totalOn : 0.0);
  if (!identical) {
    std::fprintf(stderr, "presolve on/off bounds diverged — solver bug\n");
    std::exit(1);
  }
}

const suite::Benchmark* findBenchmark(const char* name) {
  for (const auto& bench : suite::allBenchmarks()) {
    if (bench.name == name) return &bench;
  }
  return nullptr;
}

void BM_EstimatePresolve(benchmark::State& state, const char* name) {
  const suite::Benchmark* bench = findBenchmark(name);
  for (auto _ : state) {
    const RunStats r = runOnce(*bench, /*presolve=*/true);
    benchmark::DoNotOptimize(r.bound.hi);
  }
  state.counters["pivots"] =
      static_cast<double>(runOnce(*bench, true).simplexPivots());
}

void BM_EstimateRaw(benchmark::State& state, const char* name) {
  const suite::Benchmark* bench = findBenchmark(name);
  for (auto _ : state) {
    const RunStats r = runOnce(*bench, /*presolve=*/false);
    benchmark::DoNotOptimize(r.bound.hi);
  }
  state.counters["pivots"] =
      static_cast<double>(runOnce(*bench, false).simplexPivots());
}

BENCHMARK_CAPTURE(BM_EstimatePresolve, dhry, "dhry");
BENCHMARK_CAPTURE(BM_EstimateRaw, dhry, "dhry");
BENCHMARK_CAPTURE(BM_EstimatePresolve, whetstone, "whetstone");
BENCHMARK_CAPTURE(BM_EstimateRaw, whetstone, "whetstone");

}  // namespace

int main(int argc, char** argv) {
  printPresolveTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
