// Reproduces Table I of the paper: the benchmark set with source-line
// counts and the number of constraint sets passed to the ILP solver
// (total after DNF expansion, and how many survive null-set pruning).
//
// Also registers a google-benchmark timer per program measuring the full
// analysis (constraint construction + all ILP solves), the quantity the
// paper reports as "less than 2 seconds on an SGI Indigo".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cinderella/suite/harness.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

void printTable() {
  std::printf("TABLE I: SET OF BENCHMARK EXAMPLES\n");
  std::printf("%-18s %-45s %6s %6s %8s\n", "Function", "Description", "Lines",
              "Sets", "NonNull");
  for (const auto& bench : suite::allBenchmarks()) {
    const suite::BenchmarkEvaluation eval = suite::evaluate(bench);
    std::printf("%-18s %-45s %6d %6d %8d\n", bench.name.c_str(),
                bench.description.c_str(), eval.sourceLines,
                eval.stats.constraintSets,
                eval.stats.constraintSets - eval.stats.prunedNullSets);
  }
  std::printf("\n");
}

void BM_Analysis(benchmark::State& state, const suite::Benchmark* bench) {
  for (auto _ : state) {
    const suite::BenchmarkEvaluation eval = suite::evaluate(*bench);
    benchmark::DoNotOptimize(eval.estimated.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const auto& bench : suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("analysis/" + bench.name).c_str(),
                                 BM_Analysis, &bench)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
