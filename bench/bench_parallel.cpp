// Wall-clock scaling of the parallel constraint-set solve engine.
//
// estimate(SolveControl) dispatches one worst/best ILP pair (plus an LP
// feasibility probe) per conjunctive constraint set onto a work-stealing
// thread pool.  The benchmarks here sweep thread counts 1/2/4/8 over the
// disjunction-heavy suite members (dhry expands to 8 sets, check_data to
// 4) and over the conflict-graph cache mode, whose per-set ILPs carry the
// extra cache flow variables and dominate solve time.
//
// The summary table reports the measured speedup over the serial path and
// asserts (prints, not aborts) that every configuration returns the exact
// bound of the serial run — determinism is the API contract.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/obs/json.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/thread_pool.hpp"

namespace {

using namespace cinderella;

constexpr int kThreadSweep[] = {1, 2, 4, 8};

struct Workload {
  const char* name;        // suite benchmark
  ipet::CacheMode mode;    // cache model (ccg makes the per-set ILPs fat)
  const char* label;       // row label in the table / benchmark name
};

constexpr Workload kWorkloads[] = {
    {"check_data", ipet::CacheMode::AllMiss, "check_data/allmiss"},
    {"dhry", ipet::CacheMode::AllMiss, "dhry/allmiss"},
    {"check_data", ipet::CacheMode::ConflictGraph, "check_data/ccg"},
    {"dhry", ipet::CacheMode::ConflictGraph, "dhry/ccg"},
};

ipet::Analyzer makeAnalyzer(const suite::Benchmark& bench,
                            const codegen::CompileResult& compiled,
                            ipet::CacheMode mode) {
  ipet::AnalyzerOptions options;
  options.cacheMode = mode;
  ipet::Analyzer analyzer(compiled, bench.rootFunction, options);
  for (const auto& c : bench.constraints) {
    analyzer.addConstraint(c.text, c.scope);
  }
  return analyzer;
}

double timeEstimate(const ipet::Analyzer& analyzer, int threads,
                    std::int64_t* bound) {
  ipet::SolveControl control;
  control.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const ipet::Estimate estimate = analyzer.estimate(control);
  const auto t1 = std::chrono::steady_clock::now();
  *bound = estimate.bound.hi;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void printScalingTable() {
  std::printf("PARALLEL SOLVE SCALING (host hardware threads: %d)\n",
              support::ThreadPool::hardwareThreads());
  std::printf("%-22s %6s", "Workload", "sets");
  for (const int threads : kThreadSweep) {
    std::printf(" | %8s %7s", (std::to_string(threads) + "T ms").c_str(),
                "speedup");
  }
  std::printf(" | %s\n", "same bound");
  for (const Workload& w : kWorkloads) {
    const auto& bench = suite::benchmarkByName(w.name);
    const codegen::CompileResult compiled =
        codegen::compileSource(bench.source);
    const ipet::Analyzer analyzer = makeAnalyzer(bench, compiled, w.mode);
    const ipet::Estimate serial = analyzer.estimate();
    std::printf("%-22s %6d", w.label, serial.stats.constraintSets);
    bool identical = true;
    double serialMs = 0.0;
    std::vector<std::string> jsonLines;
    for (const int threads : kThreadSweep) {
      // Best of three runs: estimate() is short enough that a single
      // sample is dominated by scheduler noise.
      double best = 0.0;
      std::int64_t bound = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const double ms = timeEstimate(analyzer, threads, &bound);
        if (rep == 0 || ms < best) best = ms;
      }
      if (threads == 1) serialMs = best;
      identical = identical && bound == serial.bound.hi;
      std::printf(" | %8.2f %6.2fx", best, serialMs / best);
      // Machine-readable mirror of this cell, printed after the table.
      obs::JsonWriter j;
      j.beginObject()
          .key("bench").value("parallel")
          .key("workload").value(w.label)
          .key("sets").value(serial.stats.constraintSets)
          .key("threads").value(threads)
          .key("ms").value(best)
          .key("bound").value(bound)
          .key("identical").value(bound == serial.bound.hi)
          .endObject();
      jsonLines.push_back(j.str());
    }
    std::printf(" | %s\n", identical ? "yes" : "NO");
    for (const std::string& line : jsonLines) {
      std::printf("%s\n", line.c_str());
    }
  }
  std::printf(
      "\nSpeedup is relative to threads=1 on this host; meaningful scaling\n"
      "requires both multiple hardware threads and multiple constraint\n"
      "sets (dhry: 8 sets, 3 surviving null-set pruning).\n\n");
}

void BM_Estimate(benchmark::State& state, const Workload& w) {
  const auto& bench = suite::benchmarkByName(w.name);
  const codegen::CompileResult compiled = codegen::compileSource(bench.source);
  const ipet::Analyzer analyzer = makeAnalyzer(bench, compiled, w.mode);
  ipet::SolveControl control;
  control.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.estimate(control).bound.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printScalingTable();
  for (const Workload& w : kWorkloads) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("estimate/") + w.label).c_str(), BM_Estimate, w);
    for (const int threads : kThreadSweep) b->Arg(threads);
    b->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
