// Reproduces Table II of the paper: pessimism in path analysis.
// For every benchmark, the estimated bound (IPET) is compared with the
// calculated bound (per-block counters from instrumented extreme-case
// runs, multiplied by the same static block costs).  The paper reports
// pessimism of [0.00, 0.02] across the suite; the SHAPE to reproduce is
// near-zero path pessimism.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cinderella/suite/harness.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

void printTable() {
  std::printf("TABLE II: PESSIMISM IN PATH ANALYSIS\n");
  std::printf("%-18s %-26s %-26s %-14s\n", "Function", "Estimated Bound",
              "Calculated Bound", "Pessimism");
  for (const auto& bench : suite::allBenchmarks()) {
    const suite::BenchmarkEvaluation e = suite::evaluate(bench);
    std::printf("%-18s %-26s %-26s [%s, %s]\n", e.name.c_str(),
                intervalStr(e.estimated.lo, e.estimated.hi).c_str(),
                intervalStr(e.calculated.lo, e.calculated.hi).c_str(),
                fixed(e.pessCalcLo, 2).c_str(), fixed(e.pessCalcHi, 2).c_str());
  }
  std::printf("\n");
}

void BM_EstimateOnly(benchmark::State& state,
                     const suite::Benchmark* bench) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  for (auto _ : state) {
    ipet::Analyzer analyzer(compiled, bench->rootFunction);
    for (const auto& c : bench->constraints) {
      analyzer.addConstraint(c.text, c.scope);
    }
    const ipet::Estimate e = analyzer.estimate();
    benchmark::DoNotOptimize(e.bound.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const auto& bench : suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("estimate/" + bench.name).c_str(),
                                 BM_EstimateOnly, &bench)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
