// Reproduces the paper's core motivation (Sections I-II): explicit path
// enumeration "runs out of steam rather quickly since the number of
// feasible program paths is typically exponential in the size of the
// program", while the implicit ILP formulation stays flat.
//
// Workload: a scaling family of programs with N sequential two-way
// conditionals inside a loop of B iterations -> 2^(N*B) paths, plus the
// real Table-I benchmarks.  For each instance we report the number of
// explicit paths (capped) against the number of LP calls IPET needs, and
// register timing benchmarks for both methods.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/explicitpath/enumerator.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

/// N sequential conditionals inside a B-iteration loop.
std::string scalingProgram(int conditionals, int trips) {
  std::string body;
  for (int i = 0; i < conditionals; ++i) {
    body += "    if (x > " + std::to_string(i) + ") { s = s + " +
            std::to_string(i + 1) + "; } else { s = s - 1; }\n";
  }
  return "int f(int x) {\n"
         "  int i; int s; s = 0;\n"
         "  for (i = 0; i < " + std::to_string(trips) + "; i = i + 1) {\n"
         "    __loopbound(" + std::to_string(trips) + ", " +
         std::to_string(trips) + ");\n" + body +
         "  }\n"
         "  return s;\n"
         "}\n";
}

void printScalingTable() {
  std::printf("EXPLICIT ENUMERATION vs IMPLICIT (IPET) — scaling family\n");
  std::printf("%6s %6s %16s %10s %10s %8s\n", "N", "B", "paths(explicit)",
              "complete", "LP calls", "agree");
  for (const auto& [n, b] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 2}, {3, 3}, {4, 4}, {5, 4}, {6, 4}, {8, 4}, {10, 4}}) {
    const std::string source = scalingProgram(n, b);
    const codegen::CompileResult compiled = codegen::compileSource(source);

    explicitpath::EnumOptions eo;
    eo.maxPaths = 3'000'000;
    const explicitpath::EnumResult ex =
        explicitpath::enumeratePaths(compiled, "f", eo);

    ipet::Analyzer analyzer(compiled, "f");
    const ipet::Estimate est = analyzer.estimate();

    const bool agree =
        ex.complete && est.bound.hi == ex.worst && est.bound.lo == ex.best;
    std::printf("%6d %6d %16s %10s %10d %8s\n", n, b,
                withThousands(static_cast<std::int64_t>(ex.pathsExplored))
                    .c_str(),
                ex.complete ? "yes" : "CAPPED", est.stats.lpCalls,
                ex.complete ? (agree ? "yes" : "NO") : "-");
  }
  std::printf("\nOn the real suite, check_data alone has 177k paths while "
              "IPET solves 4 LPs;\nfft/des-scale programs are out of reach "
              "for enumeration entirely.\n\n");
}

void BM_Explicit(benchmark::State& state) {
  const std::string source = scalingProgram(static_cast<int>(state.range(0)),
                                            static_cast<int>(state.range(1)));
  const codegen::CompileResult compiled = codegen::compileSource(source);
  explicitpath::EnumOptions eo;
  eo.maxPaths = 3'000'000;
  for (auto _ : state) {
    const auto r = explicitpath::enumeratePaths(compiled, "f", eo);
    benchmark::DoNotOptimize(r.worst);
  }
}

void BM_Implicit(benchmark::State& state) {
  const std::string source = scalingProgram(static_cast<int>(state.range(0)),
                                            static_cast<int>(state.range(1)));
  const codegen::CompileResult compiled = codegen::compileSource(source);
  for (auto _ : state) {
    ipet::Analyzer analyzer(compiled, "f");
    benchmark::DoNotOptimize(analyzer.estimate().bound.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printScalingTable();
  for (const auto& [n, b] :
       std::vector<std::pair<int, int>>{{2, 2}, {4, 4}, {6, 4}}) {
    benchmark::RegisterBenchmark(
        ("explicit/N" + std::to_string(n) + "B" + std::to_string(b)).c_str(),
        BM_Explicit)
        ->Args({n, b})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("implicit/N" + std::to_string(n) + "B" + std::to_string(b)).c_str(),
        BM_Implicit)
        ->Args({n, b})
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
