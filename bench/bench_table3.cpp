// Reproduces Table III of the paper: discrepancy between the estimated
// bound and the measured bound.  Measurements run on the cycle-accurate
// simulator standing in for the paper's QT960 board: cache flushed for
// the worst-case run, warm for the best-case run.
//
// The shape to reproduce: the estimated bound always encloses the
// measured bound, and the pessimism is much larger than in Table II
// because the all-miss/all-hit cache assumption is conservative
// (the paper reports upper pessimism up to 2.91 on fullsearch).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cinderella/sim/simulator.hpp"
#include "cinderella/suite/harness.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

void printTable() {
  std::printf(
      "TABLE III: DISCREPANCY BETWEEN THE ESTIMATED AND MEASURED BOUND\n");
  std::printf("%-18s %-26s %-26s %-14s\n", "Function", "Estimated Bound",
              "Measured Bound", "Pessimism");
  for (const auto& bench : suite::allBenchmarks()) {
    const suite::BenchmarkEvaluation e = suite::evaluate(bench);
    std::printf("%-18s %-26s %-26s [%s, %s]\n", e.name.c_str(),
                intervalStr(e.estimated.lo, e.estimated.hi).c_str(),
                intervalStr(e.measured.lo, e.measured.hi).c_str(),
                fixed(e.pessMeasLo, 2).c_str(), fixed(e.pessMeasHi, 2).c_str());
  }
  std::printf("\n");
}

void BM_MeasureWorst(benchmark::State& state,
                     const suite::Benchmark* bench) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  sim::Simulator simulator(compiled.module);
  const int fn = *compiled.module.findFunction(bench->rootFunction);
  sim::SimOptions options;
  options.patches = bench->worstData;
  for (auto _ : state) {
    const sim::SimResult r = simulator.run(fn, {}, options);
    benchmark::DoNotOptimize(r.cycles);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const auto& bench : suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("simulate/" + bench.name).c_str(),
                                 BM_MeasureWorst, &bench)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
