// Micro-benchmarks for the LP/ILP substrate: simplex scaling with
// problem size on IPET-shaped (flow conservation) systems, and the cost
// of branch-and-bound when the relaxation is / is not integral.
#include <benchmark/benchmark.h>

#include "cinderella/ilp/branch_and_bound.hpp"
#include "cinderella/lp/simplex.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

/// Builds a flow-conservation problem shaped like an IPET system: a
/// chain of `n` diamonds (if-then-else), block costs randomized, total
/// flow fixed to 1.
lp::Problem flowChain(int diamonds, std::uint64_t seed) {
  Xorshift64 rng(seed);
  lp::Problem p;
  lp::LinearExpr objective;
  int prevOut = p.addVar("entry");
  {
    lp::LinearExpr entry;
    entry.add(prevOut, 1.0);
    p.addConstraint(std::move(entry), lp::Relation::Equal, 1.0);
  }
  for (int i = 0; i < diamonds; ++i) {
    const int thenArm = p.addVar();
    const int elseArm = p.addVar();
    const int join = p.addVar();
    lp::LinearExpr splitFlow;
    splitFlow.add(prevOut, 1.0);
    splitFlow.add(thenArm, -1.0);
    splitFlow.add(elseArm, -1.0);
    p.addConstraint(std::move(splitFlow), lp::Relation::Equal, 0.0);
    lp::LinearExpr joinFlow;
    joinFlow.add(join, 1.0);
    joinFlow.add(thenArm, -1.0);
    joinFlow.add(elseArm, -1.0);
    p.addConstraint(std::move(joinFlow), lp::Relation::Equal, 0.0);
    objective.add(thenArm, static_cast<double>(rng.range(1, 50)));
    objective.add(elseArm, static_cast<double>(rng.range(1, 50)));
    prevOut = join;
  }
  p.setObjective(objective, lp::Sense::Maximize);
  return p;
}

void BM_SimplexFlowChain(benchmark::State& state) {
  const lp::Problem p = flowChain(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    const lp::Solution s = lp::solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["pivots"] =
      static_cast<double>(lp::solve(p).pivots);
}

void BM_IlpFlowChain(benchmark::State& state) {
  const lp::Problem p = flowChain(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    const ilp::IlpSolution s = ilp::solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["lpCalls"] =
      static_cast<double>(ilp::solve(p).stats.lpCalls);
}

void BM_IlpFractionalKnapsack(benchmark::State& state) {
  // A deliberately non-network ILP: branch-and-bound must branch.
  const int n = static_cast<int>(state.range(0));
  Xorshift64 rng(7);
  lp::Problem p;
  lp::LinearExpr weight;
  lp::LinearExpr value;
  for (int i = 0; i < n; ++i) {
    const int v = p.addVar();
    weight.add(v, static_cast<double>(2 * rng.range(3, 15) + 1));
    value.add(v, static_cast<double>(rng.range(5, 40)));
    lp::LinearExpr ub;
    ub.add(v, 1.0);
    p.addConstraint(std::move(ub), lp::Relation::LessEq, 1.0);
  }
  p.addConstraint(std::move(weight), lp::Relation::LessEq,
                  static_cast<double>(7 * n));
  p.setObjective(value, lp::Sense::Maximize);
  for (auto _ : state) {
    const ilp::IlpSolution s = ilp::solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
}

BENCHMARK(BM_SimplexFlowChain)->Arg(8)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_IlpFlowChain)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_IlpFractionalKnapsack)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

BENCHMARK_MAIN();
