// Ablation: per-call-site contexts (the paper's "separate set of x_i
// variables for this instance of the call", enabling eq-18-style facts)
// vs the base formulation with one variable space per function (eq 12).
//
// Context expansion multiplies variables — fullsearch's 16x16 search
// expands dist1 into 256 instances — so this bench reports the variable
// counts, analysis time, and whether the bound changes (it must not,
// unless context-qualified constraints are in play).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/suite/suite.hpp"
#include "cinderella/support/text.hpp"

namespace {

using namespace cinderella;

ipet::Estimate analyze(const suite::Benchmark& bench, bool sensitive,
                       std::size_t* numContexts) {
  const codegen::CompileResult compiled = codegen::compileSource(bench.source);
  ipet::AnalyzerOptions options;
  options.contextSensitive = sensitive;
  ipet::Analyzer analyzer(compiled, bench.rootFunction, options);
  for (const auto& c : bench.constraints) {
    analyzer.addConstraint(c.text, c.scope);
  }
  *numContexts = analyzer.contexts().size();
  return analyzer.estimate();
}

void printTable() {
  std::printf("ABLATION: per-call-site contexts vs per-function variables\n");
  std::printf("%-18s %10s %10s %14s %14s %6s\n", "Function", "ctx(sens)",
              "ctx(base)", "WCET(sens)", "WCET(base)", "equal");
  for (const auto& bench : suite::allBenchmarks()) {
    std::size_t sensCtx = 0;
    std::size_t baseCtx = 0;
    const auto sens = analyze(bench, true, &sensCtx);
    const auto base = analyze(bench, false, &baseCtx);
    std::printf("%-18s %10zu %10zu %14s %14s %6s\n", bench.name.c_str(),
                sensCtx, baseCtx, withThousands(sens.bound.hi).c_str(),
                withThousands(base.bound.hi).c_str(),
                sens.bound.hi == base.bound.hi ? "yes" : "no");
  }
  std::printf("\n(The bounds coincide because the Table-I constraints do "
              "not use context\n qualification; the sensitive mode exists "
              "for eq-18-style caller facts.)\n\n");
}

void BM_Context(benchmark::State& state, const suite::Benchmark* bench,
                bool sensitive) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  ipet::AnalyzerOptions options;
  options.contextSensitive = sensitive;
  for (auto _ : state) {
    ipet::Analyzer analyzer(compiled, bench->rootFunction, options);
    for (const auto& c : bench->constraints) {
      analyzer.addConstraint(c.text, c.scope);
    }
    benchmark::DoNotOptimize(analyzer.estimate().bound.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* name : {"fullsearch", "circle", "whetstone", "dhry"}) {
    const auto& bench = suite::benchmarkByName(name);
    benchmark::RegisterBenchmark((std::string("sensitive/") + name).c_str(),
                                 BM_Context, &bench, true)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark((std::string("base/") + name).c_str(),
                                 BM_Context, &bench, false)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
