// Ablation for the paper's Section III-D null-set pruning: "some of the
// constraint sets will become a null set ... These trivial null sets, if
// detected, will be pruned before being passed to ILP solver."
//
// dhry is the showcase (Table I: 8 sets -> 3 after pruning).  We run the
// disjunction-heavy benchmarks with pruning enabled and disabled and
// report the ILP workload each way; timing benchmarks cover both modes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/ipet/analyzer.hpp"
#include "cinderella/suite/suite.hpp"

namespace {

using namespace cinderella;

ipet::Estimate analyze(const suite::Benchmark& bench, bool prune) {
  const codegen::CompileResult compiled = codegen::compileSource(bench.source);
  ipet::AnalyzerOptions options;
  options.disableNullSetPruning = !prune;
  ipet::Analyzer analyzer(compiled, bench.rootFunction, options);
  for (const auto& c : bench.constraints) {
    analyzer.addConstraint(c.text, c.scope);
  }
  return analyzer.estimate();
}

void printTable() {
  std::printf("ABLATION: null constraint-set pruning (Section III-D)\n");
  std::printf("%-14s %6s | %10s %10s | %10s %10s | %s\n", "Function", "Sets",
              "ILPs(on)", "LPs(on)", "ILPs(off)", "LPs(off)", "same bound");
  for (const char* name : {"check_data", "dhry"}) {
    const auto& bench = suite::benchmarkByName(name);
    const ipet::Estimate on = analyze(bench, true);
    const ipet::Estimate off = analyze(bench, false);
    std::printf("%-14s %6d | %10d %10d | %10d %10d | %s\n", name,
                on.stats.constraintSets, on.stats.ilpSolves, on.stats.lpCalls,
                off.stats.ilpSolves, off.stats.lpCalls,
                on.bound == off.bound ? "yes" : "NO");
  }
  std::printf("\nWith pruning, dhry passes 3 of its 8 sets to the ILP —\n"
              "the paper's Table I footnote.  The bound is unchanged:\n"
              "pruning only removes provably infeasible sets.\n\n");
}

void BM_Pruning(benchmark::State& state, const char* name, bool prune) {
  const auto& bench = suite::benchmarkByName(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(bench, prune).bound.hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* name : {"check_data", "dhry"}) {
    benchmark::RegisterBenchmark((std::string("pruning-on/") + name).c_str(),
                                 BM_Pruning, name, true)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark((std::string("pruning-off/") + name).c_str(),
                                 BM_Pruning, name, false)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
