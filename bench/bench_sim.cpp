// Simulator throughput benchmark: simulated instructions per second over
// the Table-I workloads.  Not a paper table, but the substrate number a
// user needs to size experiments (the paper's board ran at 20 MHz; the
// simulator should be comfortably faster than real time).
#include <benchmark/benchmark.h>

#include "cinderella/codegen/codegen.hpp"
#include "cinderella/sim/simulator.hpp"
#include "cinderella/suite/suite.hpp"

namespace {

using namespace cinderella;

void BM_Simulate(benchmark::State& state, const suite::Benchmark* bench) {
  const codegen::CompileResult compiled =
      codegen::compileSource(bench->source);
  sim::Simulator simulator(compiled.module);
  const int fn = *compiled.module.findFunction(bench->rootFunction);
  sim::SimOptions options;
  options.patches = bench->worstData;
  std::int64_t instructions = 0;
  for (auto _ : state) {
    const sim::SimResult r = simulator.run(fn, {}, options);
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& bench : suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("sim/" + bench.name).c_str(), BM_Simulate,
                                 &bench)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
